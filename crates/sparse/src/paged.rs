//! The out-of-core propagation backend: [`ShardedCsr`]'s execution
//! model with the shards living on disk behind a budgeted buffer pool.
//!
//! [`PagedCsr`] opens a [`ShardFile`](crate::ShardFile) and implements
//! the full [`PropagationOperator`] surface by walking the shards **in
//! row order** — exactly like [`ShardedCsr`] — except that each shard
//! block is paged in through a [`BufferPool`] rather than held
//! resident:
//!
//! * **Budget.** The pool holds at most `budget_bytes` of deserialized
//!   shard blocks (unbudgeted when `None`). Loading past the budget
//!   evicts the least-recently-used *unpinned* blocks first.
//! * **Pins.** Every kernel pins the shard it is walking (and the
//!   prefetched next shard stays resident until something evictable
//!   must go), so the working set — current shard + next shard — can
//!   transiently overshoot a tiny budget rather than deadlock. A pin is
//!   a guard object; dropping it unpins.
//! * **Prefetch.** A background thread reads shard `i + 1` from disk
//!   while the workers walk shard `i` (classic double buffering), so a
//!   warm sequential pass overlaps I/O with compute. Prefetch failures
//!   are ignored — the demand load retries and surfaces the error.
//!
//! **Bitwise contract.** Blocks deserialize to the *same* `CsrMatrix`
//! shard blocks `ShardedCsr` holds in memory (bit-identical values,
//! same local row pointers, same global columns), and the kernel
//! dispatch below is line-for-line the `ShardedCsr` dispatch. Results
//! are therefore bitwise identical to the resident paths at **any**
//! budget × shard × thread combination — the pool changes when bytes
//! move, never what the kernels compute (property-tested in
//! `tests/out_of_core.rs`).
//!
//! **Error surface.** Construction and [`PagedCsr::load_shard`] return
//! typed [`ShardFileError`]s (corrupt or truncated stores never panic
//! there). A block that turns corrupt *after* open, observed mid-solve
//! inside a kernel, panics with a clear message — consistent with the
//! kernels' dimension-mismatch asserts, and the reason `load_shard`
//! exists as the checked warm-up path.

use crate::csr::CsrMatrix;
use crate::frontier::{FrontierPlan, FrontierStep};
use crate::fused::{validate_fused_step, FusedLinBpStep};
use crate::operator::{PropagationOperator, RowIter};
use crate::shard_file::{ShardFile, ShardFileError};
use lsbp_linalg::{Mat, ParallelismConfig};
use std::collections::HashMap;
use std::collections::HashSet;
use std::ops::{Deref, Range};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};

/// Tuning knobs for a [`PagedCsr`].
#[derive(Clone, Copy, Debug)]
pub struct PagedOptions {
    /// Byte budget for resident shard blocks; `None` means unbudgeted
    /// (every block stays resident once loaded — the pool degenerates
    /// to a lazily-loaded `ShardedCsr`).
    pub budget_bytes: Option<usize>,
    /// Run the background prefetch thread (shard `i + 1` reads overlap
    /// shard `i` compute). Disable for strictly deterministic I/O
    /// schedules in tests.
    pub prefetch: bool,
}

impl Default for PagedOptions {
    fn default() -> Self {
        Self {
            budget_bytes: None,
            prefetch: true,
        }
    }
}

impl PagedOptions {
    /// Sets the byte budget (`None` clears it).
    pub fn with_budget(mut self, bytes: Option<usize>) -> Self {
        self.budget_bytes = bytes;
        self
    }

    /// Enables or disables the prefetch thread.
    pub fn with_prefetch(mut self, on: bool) -> Self {
        self.prefetch = on;
        self
    }
}

/// Pager activity counters — monotone over the life of the operator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PagerStats {
    /// Accesses served by an already-resident block.
    pub hits: u64,
    /// Accesses that had to read the block from disk.
    pub misses: u64,
    /// Blocks evicted to make room under the budget.
    pub evictions: u64,
    /// Blocks loaded by the background prefetch thread.
    pub prefetches: u64,
}

/// One resident shard block plus its pool bookkeeping.
#[derive(Debug)]
struct Slot {
    block: Arc<CsrMatrix>,
    bytes: usize,
    /// Logical clock of the most recent access — the LRU key.
    last_used: u64,
    /// Kernels currently holding this block; pinned slots are never
    /// evicted.
    pins: usize,
}

#[derive(Debug, Default)]
struct PoolState {
    slots: HashMap<usize, Slot>,
    /// Shards currently being read from disk (by a demand load or the
    /// prefetcher) — waiters block on the condvar instead of issuing a
    /// duplicate read.
    loading: HashSet<usize>,
    resident_bytes: usize,
    clock: u64,
}

/// The budgeted block cache in front of a [`ShardFile`] — shared
/// between the kernels and the prefetch thread.
#[derive(Debug)]
pub struct BufferPool {
    file: ShardFile,
    /// `usize::MAX` when unbudgeted.
    budget: usize,
    state: Mutex<PoolState>,
    cond: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    prefetches: AtomicU64,
}

/// A pinned, resident shard block. Derefs to the block's [`CsrMatrix`];
/// the pool will not evict the block while this guard lives.
struct PinnedShard {
    pool: Arc<BufferPool>,
    idx: usize,
    block: Arc<CsrMatrix>,
}

impl Deref for PinnedShard {
    type Target = CsrMatrix;

    #[inline]
    fn deref(&self) -> &CsrMatrix {
        &self.block
    }
}

impl Drop for PinnedShard {
    fn drop(&mut self) {
        let mut st = self.pool.state.lock().unwrap();
        if let Some(slot) = st.slots.get_mut(&self.idx) {
            slot.pins -= 1;
        }
        // A transient overshoot (everything was pinned when a load needed
        // room) is corrected as soon as pins release — otherwise a pool
        // with a single oversized shard would squat over budget forever.
        if st.resident_bytes > self.pool.budget {
            self.pool.make_room(&mut st, 0);
        }
    }
}

impl BufferPool {
    fn new(file: ShardFile, budget: Option<usize>) -> Self {
        Self {
            file,
            budget: budget.unwrap_or(usize::MAX),
            state: Mutex::new(PoolState::default()),
            cond: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            prefetches: AtomicU64::new(0),
        }
    }

    /// Evicts least-recently-used unpinned blocks until `incoming` more
    /// bytes fit the budget. May leave the pool over budget when
    /// everything left is pinned — the working set always resides (the
    /// documented transient overshoot) rather than deadlocking.
    fn make_room(&self, st: &mut PoolState, incoming: usize) {
        while st.resident_bytes.saturating_add(incoming) > self.budget {
            let victim = st
                .slots
                .iter()
                .filter(|(_, slot)| slot.pins == 0)
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(&i, _)| i);
            match victim {
                Some(i) => {
                    let slot = st.slots.remove(&i).unwrap();
                    st.resident_bytes -= slot.bytes;
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
    }

    /// Pins shard `i`, demand-loading it if absent. Concurrent requests
    /// for the same shard coalesce onto one disk read (waiters park on
    /// the condvar until the loader publishes the block or fails).
    fn acquire(self: &Arc<Self>, i: usize) -> Result<PinnedShard, ShardFileError> {
        let mut st = self.state.lock().unwrap();
        loop {
            st.clock += 1;
            let clock = st.clock;
            if let Some(slot) = st.slots.get_mut(&i) {
                slot.pins += 1;
                slot.last_used = clock;
                let block = Arc::clone(&slot.block);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(PinnedShard {
                    pool: Arc::clone(self),
                    idx: i,
                    block,
                });
            }
            if st.loading.contains(&i) {
                st = self.cond.wait(st).unwrap();
                continue;
            }
            st.loading.insert(i);
            break;
        }
        drop(st);

        let loaded = self.file.read_shard(i);
        let mut st = self.state.lock().unwrap();
        st.loading.remove(&i);
        match loaded {
            Err(e) => {
                self.cond.notify_all();
                Err(e)
            }
            Ok(block) => {
                let bytes = self.file.shard_meta(i).resident_bytes();
                self.make_room(&mut st, bytes);
                let block = Arc::new(block);
                st.clock += 1;
                let clock = st.clock;
                st.slots.insert(
                    i,
                    Slot {
                        block: Arc::clone(&block),
                        bytes,
                        last_used: clock,
                        pins: 1,
                    },
                );
                st.resident_bytes += bytes;
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.cond.notify_all();
                Ok(PinnedShard {
                    pool: Arc::clone(self),
                    idx: i,
                    block,
                })
            }
        }
    }

    /// Loads shard `i` unpinned — the prefetch thread's entry point.
    /// No-ops when the block is already resident or someone else is
    /// reading it; read failures are swallowed (the demand load retries
    /// and owns the error).
    fn prefetch_load(&self, i: usize) {
        {
            let mut st = self.state.lock().unwrap();
            if st.slots.contains_key(&i) || st.loading.contains(&i) {
                return;
            }
            st.loading.insert(i);
        }
        let loaded = self.file.read_shard(i);
        let mut st = self.state.lock().unwrap();
        st.loading.remove(&i);
        if let Ok(block) = loaded {
            let bytes = self.file.shard_meta(i).resident_bytes();
            self.make_room(&mut st, bytes);
            st.clock += 1;
            let clock = st.clock;
            st.slots.insert(
                i,
                Slot {
                    block: Arc::new(block),
                    bytes,
                    last_used: clock,
                    pins: 0,
                },
            );
            st.resident_bytes += bytes;
            self.prefetches.fetch_add(1, Ordering::Relaxed);
        }
        self.cond.notify_all();
    }

    fn stats(&self) -> PagerStats {
        PagerStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            prefetches: self.prefetches.load(Ordering::Relaxed),
        }
    }
}

/// The background prefetcher: a channel of shard indices drained by one
/// thread. Dropping the handle closes the channel and joins the thread.
#[derive(Debug)]
struct PrefetchHandle {
    tx: Option<Sender<usize>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl PrefetchHandle {
    fn spawn(pool: Arc<BufferPool>) -> Self {
        let (tx, rx): (Sender<usize>, Receiver<usize>) = std::sync::mpsc::channel();
        let thread = std::thread::Builder::new()
            .name("lsbp-prefetch".into())
            .spawn(move || {
                while let Ok(i) = rx.recv() {
                    pool.prefetch_load(i);
                }
            })
            .expect("spawning the prefetch thread");
        Self {
            tx: Some(tx),
            thread: Some(thread),
        }
    }
}

impl Drop for PrefetchHandle {
    fn drop(&mut self) {
        // Closing the channel ends the receive loop; joining bounds any
        // in-flight read so the pool never outlives its file handle
        // assumptions.
        drop(self.tx.take());
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// An on-disk graph behind the [`PropagationOperator`] interface — see
/// the module docs for the execution model, the bitwise contract and
/// the error surface.
#[derive(Debug)]
pub struct PagedCsr {
    pool: Arc<BufferPool>,
    /// Shard row boundaries, `ShardedCsr`-style: shard `i` covers
    /// global rows `starts[i]..starts[i + 1]`.
    starts: Vec<usize>,
    prefetch: Option<PrefetchHandle>,
}

impl PagedCsr {
    /// Opens an existing shard store for paged execution.
    pub fn open(path: impl AsRef<Path>, opts: PagedOptions) -> Result<Self, ShardFileError> {
        Ok(Self::from_file(ShardFile::open(path)?, opts))
    }

    /// Spills `m` to `path` as a `shards`-way shard store and opens it
    /// — the one-call "make this graph out-of-core" path.
    pub fn spill(
        m: &CsrMatrix,
        path: impl AsRef<Path>,
        shards: usize,
        opts: PagedOptions,
    ) -> Result<Self, ShardFileError> {
        let path = path.as_ref();
        ShardFile::write_csr(path, m, shards)?;
        Self::open(path, opts)
    }

    /// Wraps an already-opened shard store.
    pub fn from_file(file: ShardFile, opts: PagedOptions) -> Self {
        let starts = file.starts();
        let pool = Arc::new(BufferPool::new(file, opts.budget_bytes));
        let prefetch = opts
            .prefetch
            .then(|| PrefetchHandle::spawn(Arc::clone(&pool)));
        Self {
            pool,
            starts,
            prefetch,
        }
    }

    /// Number of shards in the backing store.
    pub fn num_shards(&self) -> usize {
        self.starts.len() - 1
    }

    /// The global row range of shard `i`.
    pub fn shard_rows(&self, i: usize) -> Range<usize> {
        self.starts[i]..self.starts[i + 1]
    }

    /// Path of the backing shard store.
    pub fn path(&self) -> &Path {
        self.pool.file.path()
    }

    /// Pager activity so far.
    pub fn stats(&self) -> PagerStats {
        self.pool.stats()
    }

    /// The checked load path: pages shard `i` in through the pool
    /// (verifying its checksum) and releases the pin. This is the typed
    /// error surface for post-open corruption — call it to validate or
    /// warm a store without risking a kernel panic.
    pub fn load_shard(&self, i: usize) -> Result<(), ShardFileError> {
        self.pool.acquire(i).map(|_pin| ())
    }

    /// Reassembles the monolithic [`CsrMatrix`] by streaming every
    /// shard through the pool (bit-exact by the store's round-trip
    /// guarantee).
    ///
    /// # Panics
    /// Panics if a block fails its checksum mid-stream — use
    /// [`PagedCsr::load_shard`] first for a checked pass.
    pub fn to_csr(&self) -> CsrMatrix {
        let n_rows = PropagationOperator::n_rows(self);
        let nnz = PropagationOperator::nnz(self);
        let mut row_ptr = Vec::with_capacity(n_rows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for i in 0..self.num_shards() {
            self.request_prefetch(i + 1);
            let shard = self.pin(i);
            let base = *row_ptr.last().unwrap();
            row_ptr.extend(shard.row_offsets()[1..].iter().map(|&p| base + p));
            col_idx.extend_from_slice(shard.raw_col_idx());
            values.extend_from_slice(shard.raw_values());
        }
        CsrMatrix::from_trusted_parts(n_rows, self.pool.file.n_cols(), row_ptr, col_idx, values)
    }

    /// Pins shard `i` for kernel use.
    ///
    /// # Panics
    /// Panics on a post-open read/checksum failure (see the module docs'
    /// error surface).
    fn pin(&self, i: usize) -> PinnedShard {
        self.pool.acquire(i).unwrap_or_else(|e| {
            panic!(
                "paged operator failed to load shard {i} of {:?} mid-solve: {e}",
                self.pool.file.path()
            )
        })
    }

    /// Asks the prefetch thread for shard `i` (no-op when prefetch is
    /// off, the index is past the end, or the channel is gone).
    #[inline]
    fn request_prefetch(&self, i: usize) {
        if i >= self.num_shards() {
            return;
        }
        if let Some(handle) = &self.prefetch {
            if let Some(tx) = &handle.tx {
                let _ = tx.send(i);
            }
        }
    }

    /// The shard holding global row `r` and `r`'s local index within it
    /// — same boundary arithmetic as `ShardedCsr::locate`.
    #[inline]
    fn locate(&self, r: usize) -> (usize, usize) {
        debug_assert!(
            r < PropagationOperator::n_rows(self),
            "row {r} out of range"
        );
        let s = self.starts.partition_point(|&x| x <= r) - 1;
        (s, r - self.starts[s])
    }
}

impl PropagationOperator for PagedCsr {
    #[inline]
    fn n_rows(&self) -> usize {
        *self.starts.last().unwrap()
    }

    #[inline]
    fn n_cols(&self) -> usize {
        self.pool.file.n_cols()
    }

    #[inline]
    fn nnz(&self) -> usize {
        self.pool.file.nnz()
    }

    fn row_nnz(&self, r: usize) -> usize {
        let (s, local) = self.locate(r);
        self.pin(s).row_nnz(local)
    }

    /// Row access copies the row out **under the pool pin**, then
    /// releases it — the returned iterator stays valid however the pool
    /// evicts afterwards (the `RowIter::owned` half of the trait's
    /// soundness story).
    fn row_iter(&self, r: usize) -> RowIter<'_> {
        let (s, local) = self.locate(r);
        let shard = self.pin(s);
        RowIter::owned(
            shard.row_cols(local).to_vec(),
            shard.row_values(local).to_vec(),
        )
    }

    /// `y = A·x`, shards walked in row order; each block runs the
    /// monolithic SpMV kernel while the next block streams in from disk.
    fn spmv_into_with(&self, x: &[f64], y: &mut [f64], cfg: &ParallelismConfig) {
        assert_eq!(x.len(), self.n_cols(), "spmv dimension mismatch");
        assert_eq!(y.len(), self.n_rows(), "spmv output dimension mismatch");
        for i in 0..self.num_shards() {
            self.request_prefetch(i + 1);
            let shard = self.pin(i);
            let rows = self.shard_rows(i);
            shard.spmv_into_with(x, &mut y[rows], cfg);
        }
    }

    /// `out = A·B`, shards walked in row order through the monolithic
    /// SpMM row kernels — dispatch identical to `ShardedCsr`.
    fn spmm_into_with(&self, b: &Mat, out: &mut Mat, cfg: &ParallelismConfig) {
        assert_eq!(b.rows(), self.n_cols(), "spmm dimension mismatch");
        assert_eq!(out.rows(), self.n_rows(), "spmm output rows");
        assert_eq!(out.cols(), b.cols(), "spmm output cols");
        let kt = b.cols();
        let flat = out.as_mut_slice();
        for i in 0..self.num_shards() {
            self.request_prefetch(i + 1);
            let shard = self.pin(i);
            let rows = self.shard_rows(i);
            shard.spmm_block_with(b, &mut flat[rows.start * kt..rows.end * kt], cfg);
        }
    }

    /// The fused LinBP step over paged shards — same global-offset
    /// block dispatch and order-independent delta maxima as
    /// `ShardedCsr`, hence bitwise the monolithic step.
    fn linbp_step_fused_with(
        &self,
        b: &Mat,
        step: &FusedLinBpStep<'_>,
        out: &mut Mat,
        deltas: &mut [f64],
        cfg: &ParallelismConfig,
    ) {
        let n = self.n_rows();
        let kt = b.cols();
        let (k, _q) = validate_fused_step(n, self.n_cols(), b, step, out, deltas);
        deltas.iter_mut().for_each(|d| *d = 0.0);
        if n == 0 || kt == 0 {
            return;
        }
        let flat = out.as_mut_slice();
        for i in 0..self.num_shards() {
            self.request_prefetch(i + 1);
            let shard = self.pin(i);
            let rows = self.shard_rows(i);
            shard.fused_block_with(
                b,
                step,
                rows.start,
                &mut flat[rows.start * kt..rows.end * kt],
                deltas,
                k,
                cfg,
            );
        }
    }

    /// Builds the plan with one pin per shard (bulk slice access under
    /// the pin instead of the default's per-row owned copies). Run this
    /// once per solve, ideally warm — it walks every shard exactly once
    /// in row order, like any other full pass.
    fn frontier_plan(&self) -> FrontierPlan {
        let n = self.n_rows();
        let mut plan = FrontierPlan::empty(n, FrontierPlan::block_rows_for(n));
        for i in 0..self.num_shards() {
            self.request_prefetch(i + 1);
            let shard = self.pin(i);
            let rows = self.shard_rows(i);
            for local in 0..shard.n_rows() {
                plan.add_row(rows.start + local, shard.row_cols(local));
            }
        }
        plan
    }

    /// The frontier-aware fused step — the backend where skipping pays
    /// twice: an inactive shard is neither prefetched nor pinned, so a
    /// frozen region of the graph is **never faulted back in** (no I/O,
    /// no eviction pressure on the live shards — compounding with tight
    /// pool budgets). Prefetch targets the next *active* shard rather
    /// than blindly `i + 1`. Bitwise identical to the full step at any
    /// budget × shard × thread combination.
    fn linbp_step_fused_frontier_with(
        &self,
        b: &Mat,
        step: &FusedLinBpStep<'_>,
        out: &mut Mat,
        deltas: &mut [f64],
        fr: &mut FrontierStep<'_>,
        cfg: &ParallelismConfig,
    ) {
        let n = self.n_rows();
        let kt = b.cols();
        let (k, _q) = validate_fused_step(n, self.n_cols(), b, step, out, deltas);
        deltas.iter_mut().for_each(|d| *d = 0.0);
        if n == 0 || kt == 0 {
            return;
        }
        let (plan, summary) = (fr.plan, fr.summary);
        let shard_active = |i: usize| !plan.range_inactive(self.shard_rows(i), summary);
        let flat = out.as_mut_slice();
        for i in 0..self.num_shards() {
            let rows = self.shard_rows(i);
            if !shard_active(i) {
                fr.rows_skipped += (rows.end - rows.start) as u64;
                continue;
            }
            if let Some(next) = (i + 1..self.num_shards()).find(|&j| shard_active(j)) {
                self.request_prefetch(next);
            }
            let shard = self.pin(i);
            shard.fused_block_frontier_with(
                b,
                step,
                rows.start,
                &mut flat[rows.start * kt..rows.end * kt],
                deltas,
                k,
                fr,
                cfg,
            );
        }
    }

    fn transpose_with(&self, cfg: &ParallelismConfig) -> CsrMatrix {
        self.to_csr().transpose_with(cfg)
    }

    fn row_sums(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_rows());
        for i in 0..self.num_shards() {
            self.request_prefetch(i + 1);
            out.extend(self.pin(i).row_sums());
        }
        out
    }

    fn squared_weight_degrees(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_rows());
        for i in 0..self.num_shards() {
            self.request_prefetch(i + 1);
            out.extend(self.pin(i).squared_weight_degrees());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::sharded::ShardedCsr;
    use std::path::PathBuf;

    fn sample() -> CsrMatrix {
        let mut coo = CooMatrix::new(7, 7);
        coo.push_symmetric(0, 1, 2.0);
        coo.push_symmetric(0, 2, 1.0);
        coo.push_symmetric(0, 3, 0.5);
        coo.push_symmetric(1, 4, 3.0);
        coo.push_symmetric(2, 4, 1.5);
        coo.push_symmetric(4, 5, 0.25);
        coo.to_csr()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lsbp-paged-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn bits_eq(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn kernels_match_resident_bitwise_at_any_budget() {
        let m = sample();
        let n = m.n_rows();
        let b = Mat::from_fn(n, 3, |r, c| ((r * 3 + c) % 11) as f64 * 0.07 - 0.3);
        let cfg = ParallelismConfig::with_threads(2).with_min_work(1);
        let x: Vec<f64> = (0..n).map(|i| (i % 5) as f64 * 0.2 - 0.4).collect();
        let mut y_mono = vec![0.0; n];
        m.spmv_into_with(&x, &mut y_mono, &cfg);
        let mut o_mono = Mat::zeros(n, 3);
        m.spmm_into_with(&b, &mut o_mono, &cfg);

        for budget in [Some(1usize), Some(200), None] {
            let path = tmp(&format!("kernels-{budget:?}.lsbp"));
            let paged =
                PagedCsr::spill(&m, &path, 3, PagedOptions::default().with_budget(budget)).unwrap();
            let mut y = vec![0.0; n];
            paged.spmv_into_with(&x, &mut y, &cfg);
            assert!(bits_eq(&y, &y_mono), "spmv, budget {budget:?}");
            let mut o = Mat::zeros(n, 3);
            paged.spmm_into_with(&b, &mut o, &cfg);
            assert!(
                bits_eq(o.as_slice(), o_mono.as_slice()),
                "spmm, budget {budget:?}"
            );
            assert_eq!(paged.to_csr(), m, "assembly, budget {budget:?}");
            assert_eq!(paged.row_sums(), m.row_sums());
            assert_eq!(paged.squared_weight_degrees(), m.squared_weight_degrees());
            assert_eq!(paged.transpose_with(&cfg), m.transpose_with(&cfg));
            drop(paged);
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn row_access_is_owned_and_correct() {
        let m = sample();
        let path = tmp("rows.lsbp");
        // One-byte budget: every shard is evicted as soon as it is
        // unpinned, so a dangling borrow would be caught immediately.
        let paged = PagedCsr::spill(
            &m,
            &path,
            4,
            PagedOptions::default()
                .with_budget(Some(1))
                .with_prefetch(false),
        )
        .unwrap();
        let rows: Vec<Vec<(usize, f64)>> = (0..m.n_rows())
            .map(|r| paged.row_iter(r).collect())
            .collect();
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(paged.row_nnz(r), m.row_nnz(r), "row {r}");
            assert_eq!(*row, m.row_iter(r).collect::<Vec<_>>(), "row {r}");
        }
        drop(paged);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tiny_budget_evicts_and_counts() {
        let m = sample();
        let path = tmp("evict.lsbp");
        let paged = PagedCsr::spill(
            &m,
            &path,
            4,
            PagedOptions::default()
                .with_budget(Some(1))
                .with_prefetch(false),
        )
        .unwrap();
        let cfg = ParallelismConfig::serial();
        let x = vec![1.0; m.n_cols()];
        let mut y = vec![0.0; m.n_rows()];
        paged.spmv_into_with(&x, &mut y, &cfg);
        paged.spmv_into_with(&x, &mut y, &cfg);
        let stats = paged.stats();
        // A 1-byte budget forces a miss for every shard visit on both
        // passes and an eviction for (nearly) every load.
        assert_eq!(stats.misses, 2 * paged.num_shards() as u64);
        assert!(stats.evictions >= stats.misses - 1, "{stats:?}");
        assert_eq!(stats.hits, 0);
        drop(paged);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unbudgeted_second_pass_is_all_hits() {
        let m = sample();
        let path = tmp("warm.lsbp");
        let paged =
            PagedCsr::spill(&m, &path, 3, PagedOptions::default().with_prefetch(false)).unwrap();
        let cfg = ParallelismConfig::serial();
        let x = vec![1.0; m.n_cols()];
        let mut y = vec![0.0; m.n_rows()];
        paged.spmv_into_with(&x, &mut y, &cfg);
        let cold = paged.stats();
        assert_eq!(cold.misses, paged.num_shards() as u64);
        paged.spmv_into_with(&x, &mut y, &cfg);
        let warm = paged.stats();
        assert_eq!(warm.misses, cold.misses, "no new disk reads when warm");
        assert_eq!(warm.hits, paged.num_shards() as u64);
        assert_eq!(warm.evictions, 0);
        drop(paged);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn prefetch_thread_loads_ahead() {
        let m = sample();
        let path = tmp("prefetch.lsbp");
        let paged = PagedCsr::spill(&m, &path, 4, PagedOptions::default()).unwrap();
        let cfg = ParallelismConfig::serial();
        let x = vec![1.0; m.n_cols()];
        let mut y = vec![0.0; m.n_rows()];
        // Drive several passes; the prefetcher races the demand loads,
        // so eventually some loads land as prefetches (and whatever it
        // loaded is consumed as hits). Either way the answers match.
        let mut y_mono = vec![0.0; m.n_rows()];
        m.spmv_into_with(&x, &mut y_mono, &cfg);
        for _ in 0..4 {
            paged.spmv_into_with(&x, &mut y, &cfg);
            assert!(bits_eq(&y, &y_mono));
        }
        let stats = paged.stats();
        // Every shard visit is exactly one hit or one demand miss;
        // prefetch loads are extra reads on top.
        assert_eq!(stats.hits + stats.misses, 4 * paged.num_shards() as u64);
        drop(paged);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_shard_surfaces_corruption_as_typed_error() {
        let m = sample();
        let path = tmp("corrupt.lsbp");
        ShardFile::write_csr(&path, &m, 2).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let paged = PagedCsr::open(&path, PagedOptions::default().with_prefetch(false)).unwrap();
        assert!(paged.load_shard(0).is_ok());
        assert!(matches!(
            paged.load_shard(1),
            Err(ShardFileError::ChecksumMismatch(_))
        ));
        drop(paged);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn matches_sharded_layout_exactly() {
        let m = sample();
        for shards in [1usize, 2, 4, 7] {
            let path = tmp(&format!("layout-{shards}.lsbp"));
            let paged = PagedCsr::spill(&m, &path, shards, PagedOptions::default()).unwrap();
            let sh = ShardedCsr::from_csr(&m, shards);
            assert_eq!(paged.num_shards(), sh.num_shards());
            for i in 0..sh.num_shards() {
                assert_eq!(paged.shard_rows(i), sh.shard_rows(i));
            }
            drop(paged);
            std::fs::remove_file(&path).ok();
        }
    }
}

//! The on-disk shard store — `ShardedCsr`'s layout, serialized.
//!
//! A [`ShardFile`] holds one graph as a sequence of u32 CSR shard
//! blocks, each exactly the block [`crate::ShardedCsr`] would hold in
//! memory: local row pointers, **global** column indices, values. The
//! row-range partition is recorded in a checksummed directory, so a
//! reader can page any single shard in without touching the others —
//! the access unit of the out-of-core engine ([`crate::PagedCsr`]).
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! magic        8 B   "LSBPSHF1"
//! version      4 B   u32, currently 1
//! n_rows       8 B   u64
//! n_cols       8 B   u64
//! nnz          8 B   u64
//! n_shards     8 B   u64
//! directory    n_shards × 48 B:
//!     row_start u64 · row_end u64 · nnz u64 ·
//!     byte_off u64 · byte_len u64 · block_checksum u64
//! header_checksum  8 B   FNV-1a over everything above
//! blocks       back to back at their directory offsets:
//!     row_ptr  (rows+1) × u64   (local, row_ptr[0] == 0)
//!     col_idx  nnz × u32        (global columns)
//!     values   nnz × u64        (f64 bit patterns)
//! ```
//!
//! Values travel as raw `f64::to_bits` patterns — a round trip is
//! bit-exact, which is what lets the paged backend promise bitwise
//! equality with the resident solve.
//!
//! Every failure mode is a typed [`ShardFileError`], never a panic:
//! truncation is caught structurally (`open` checks that every
//! directory extent fits the file), bit rot by the per-block and header
//! checksums.

use crate::csr::CsrMatrix;
use crate::operator::PropagationOperator;
use crate::sharded::ShardedCsr;
use std::fs::File;
use std::io::{Read, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};

/// File magic: "LSBPSHF1".
pub const SHARD_FILE_MAGIC: [u8; 8] = *b"LSBPSHF1";

/// Current format version.
pub const SHARD_FILE_VERSION: u32 = 1;

/// Bytes per directory entry (6 × u64).
const DIR_ENTRY_LEN: usize = 48;

/// Fixed header length before the directory.
const FIXED_HEADER_LEN: usize = 8 + 4 + 8 * 4;

/// Errors surfaced by the shard store. Every corruption/truncation mode
/// is a typed variant — callers decide whether to fail the request,
/// refetch, or fall back to a resident solve.
#[derive(Debug)]
pub enum ShardFileError {
    /// Underlying I/O failure (open, read, write, flush).
    Io(std::io::Error),
    /// The file does not start with the shard-store magic.
    BadMagic,
    /// The file's format version is newer than this reader.
    UnsupportedVersion(u32),
    /// The file ends before the named section's recorded extent.
    Truncated(&'static str),
    /// A structural invariant does not hold (non-monotone row pointers,
    /// column beyond `n_cols`, overlapping extents, …).
    Corrupt(String),
    /// Stored bytes do not match their recorded checksum.
    ChecksumMismatch(String),
}

impl std::fmt::Display for ShardFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardFileError::Io(e) => write!(f, "shard file I/O error: {e}"),
            ShardFileError::BadMagic => write!(f, "not a shard file (bad magic)"),
            ShardFileError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported shard file version {v} (reader supports {SHARD_FILE_VERSION})"
                )
            }
            ShardFileError::Truncated(what) => write!(f, "shard file truncated in {what}"),
            ShardFileError::Corrupt(what) => write!(f, "shard file corrupt: {what}"),
            ShardFileError::ChecksumMismatch(what) => {
                write!(f, "shard file checksum mismatch in {what}")
            }
        }
    }
}

impl std::error::Error for ShardFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardFileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ShardFileError {
    fn from(e: std::io::Error) -> Self {
        ShardFileError::Io(e)
    }
}

/// FNV-1a 64-bit — small, dependency-free, and plenty for catching the
/// torn writes and bit rot a pager must detect (not a cryptographic
/// integrity guarantee).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One shard's directory entry: its global row range, entry count, and
/// where its block lives in the file.
#[derive(Clone, Debug)]
pub struct ShardMeta {
    /// Global row range the shard covers.
    pub rows: Range<usize>,
    /// Stored entries in the shard.
    pub nnz: usize,
    /// Byte offset of the shard block in the file.
    pub byte_off: u64,
    /// Byte length of the shard block.
    pub byte_len: u64,
    /// FNV-1a checksum of the block bytes.
    pub checksum: u64,
}

impl ShardMeta {
    /// Approximate in-memory footprint of the deserialized block —
    /// what the buffer pool charges against its byte budget.
    pub fn resident_bytes(&self) -> usize {
        let rows = self.rows.end - self.rows.start;
        (rows + 1) * std::mem::size_of::<usize>()
            + self.nnz * (std::mem::size_of::<u32>() + std::mem::size_of::<f64>())
    }
}

/// An opened (validated, not yet loaded) shard store — the directory
/// lives in memory, the blocks stay on disk until
/// [`ShardFile::read_shard`] pages them in.
#[derive(Debug)]
pub struct ShardFile {
    path: PathBuf,
    file: File,
    n_rows: usize,
    n_cols: usize,
    nnz: usize,
    shards: Vec<ShardMeta>,
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn read_u64(bytes: &[u8], off: &mut usize) -> u64 {
    let v = u64::from_le_bytes(bytes[*off..*off + 8].try_into().unwrap());
    *off += 8;
    v
}

fn to_usize(v: u64, what: &'static str) -> Result<usize, ShardFileError> {
    usize::try_from(v).map_err(|_| ShardFileError::Corrupt(format!("{what} {v} exceeds usize")))
}

impl ShardFile {
    /// Serializes a sharded matrix to `path` (atomically enough for our
    /// use: written to the final name in one pass, flushed before
    /// returning). Existing files are truncated.
    pub fn write(path: impl AsRef<Path>, sharded: &ShardedCsr) -> Result<(), ShardFileError> {
        let path = path.as_ref();
        let n_shards = sharded.num_shards();

        // Serialize every block first so the directory can record exact
        // offsets and checksums.
        let mut blocks: Vec<Vec<u8>> = Vec::with_capacity(n_shards);
        for i in 0..n_shards {
            let shard = sharded.shard(i);
            let mut buf = Vec::with_capacity(8 * (shard.n_rows() + 1) + 12 * shard.nnz());
            for &p in shard.row_offsets() {
                push_u64(&mut buf, p as u64);
            }
            for &c in shard.raw_col_idx() {
                buf.extend_from_slice(&c.to_le_bytes());
            }
            for &v in shard.raw_values() {
                push_u64(&mut buf, v.to_bits());
            }
            blocks.push(buf);
        }

        let header_len = FIXED_HEADER_LEN + n_shards * DIR_ENTRY_LEN + 8;
        let mut header = Vec::with_capacity(header_len);
        header.extend_from_slice(&SHARD_FILE_MAGIC);
        header.extend_from_slice(&SHARD_FILE_VERSION.to_le_bytes());
        push_u64(&mut header, sharded.n_rows() as u64);
        push_u64(&mut header, sharded.n_cols() as u64);
        push_u64(&mut header, sharded.nnz() as u64);
        push_u64(&mut header, n_shards as u64);
        let mut off = header_len as u64;
        for (i, block) in blocks.iter().enumerate() {
            let rows = sharded.shard_rows(i);
            push_u64(&mut header, rows.start as u64);
            push_u64(&mut header, rows.end as u64);
            push_u64(&mut header, sharded.shard(i).nnz() as u64);
            push_u64(&mut header, off);
            push_u64(&mut header, block.len() as u64);
            push_u64(&mut header, fnv1a(block));
            off += block.len() as u64;
        }
        let header_checksum = fnv1a(&header);
        push_u64(&mut header, header_checksum);
        debug_assert_eq!(header.len(), header_len);

        let mut file = File::create(path)?;
        file.write_all(&header)?;
        for block in &blocks {
            file.write_all(block)?;
        }
        file.sync_all()?;
        Ok(())
    }

    /// Shards `m` into `shards` nnz-balanced row ranges and serializes
    /// the result — the one-call spill path.
    pub fn write_csr(
        path: impl AsRef<Path>,
        m: &CsrMatrix,
        shards: usize,
    ) -> Result<(), ShardFileError> {
        Self::write(path, &ShardedCsr::from_csr(m, shards))
    }

    /// Opens and validates a shard store: magic, version, header
    /// checksum, and the structural envelope (directory entries tile
    /// the rows, extents fit the file). Block *contents* are verified
    /// against their checksums at [`ShardFile::read_shard`] time — an
    /// open stays O(header), never O(file).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, ShardFileError> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let file_len = file.metadata()?.len();

        let mut fixed = [0u8; FIXED_HEADER_LEN];
        if file_len < FIXED_HEADER_LEN as u64 {
            return Err(ShardFileError::Truncated("fixed header"));
        }
        file.read_exact(&mut fixed)?;
        if fixed[..8] != SHARD_FILE_MAGIC {
            return Err(ShardFileError::BadMagic);
        }
        let version = u32::from_le_bytes(fixed[8..12].try_into().unwrap());
        if version != SHARD_FILE_VERSION {
            return Err(ShardFileError::UnsupportedVersion(version));
        }
        let mut off = 12;
        let n_rows = to_usize(read_u64(&fixed, &mut off), "n_rows")?;
        let n_cols = to_usize(read_u64(&fixed, &mut off), "n_cols")?;
        let nnz = to_usize(read_u64(&fixed, &mut off), "nnz")?;
        let n_shards = to_usize(read_u64(&fixed, &mut off), "n_shards")?;
        // A directory entry is 48 bytes; cap n_shards by what the file
        // could possibly hold before allocating for it.
        let max_shards = (file_len / DIR_ENTRY_LEN as u64).min(u32::MAX as u64) as usize;
        if n_shards > max_shards {
            return Err(ShardFileError::Corrupt(format!(
                "directory claims {n_shards} shards in a {file_len}-byte file"
            )));
        }

        let dir_len = n_shards * DIR_ENTRY_LEN;
        let header_len = FIXED_HEADER_LEN + dir_len + 8;
        if file_len < header_len as u64 {
            return Err(ShardFileError::Truncated("shard directory"));
        }
        let mut dir = vec![0u8; dir_len + 8];
        file.read_exact(&mut dir)?;
        let stored_checksum = u64::from_le_bytes(dir[dir_len..dir_len + 8].try_into().unwrap());
        let mut whole = Vec::with_capacity(FIXED_HEADER_LEN + dir_len);
        whole.extend_from_slice(&fixed);
        whole.extend_from_slice(&dir[..dir_len]);
        if fnv1a(&whole) != stored_checksum {
            return Err(ShardFileError::ChecksumMismatch("header".into()));
        }

        let mut shards = Vec::with_capacity(n_shards);
        let mut off = 0usize;
        let mut expect_row = 0usize;
        let mut expect_off = header_len as u64;
        let mut total_nnz = 0usize;
        for i in 0..n_shards {
            let row_start = to_usize(read_u64(&dir, &mut off), "row_start")?;
            let row_end = to_usize(read_u64(&dir, &mut off), "row_end")?;
            let shard_nnz = to_usize(read_u64(&dir, &mut off), "shard nnz")?;
            let byte_off = read_u64(&dir, &mut off);
            let byte_len = read_u64(&dir, &mut off);
            let checksum = read_u64(&dir, &mut off);
            if row_start != expect_row || row_end < row_start || row_end > n_rows {
                return Err(ShardFileError::Corrupt(format!(
                    "shard {i} rows {row_start}..{row_end} do not tile 0..{n_rows}"
                )));
            }
            let expect_len = 8 * (row_end - row_start + 1) as u64 + 12 * shard_nnz as u64;
            if byte_len != expect_len {
                return Err(ShardFileError::Corrupt(format!(
                    "shard {i} block length {byte_len} != expected {expect_len}"
                )));
            }
            if byte_off != expect_off {
                return Err(ShardFileError::Corrupt(format!(
                    "shard {i} block offset {byte_off} != expected {expect_off}"
                )));
            }
            if byte_off
                .checked_add(byte_len)
                .is_none_or(|end| end > file_len)
            {
                return Err(ShardFileError::Truncated("shard block"));
            }
            expect_row = row_end;
            expect_off = byte_off + byte_len;
            total_nnz += shard_nnz;
            shards.push(ShardMeta {
                rows: row_start..row_end,
                nnz: shard_nnz,
                byte_off,
                byte_len,
                checksum,
            });
        }
        if expect_row != n_rows {
            return Err(ShardFileError::Corrupt(format!(
                "directory covers rows 0..{expect_row}, file claims {n_rows}"
            )));
        }
        if total_nnz != nnz {
            return Err(ShardFileError::Corrupt(format!(
                "directory nnz sum {total_nnz} != header nnz {nnz}"
            )));
        }

        Ok(Self {
            path,
            file,
            n_rows,
            n_cols,
            nnz,
            shards,
        })
    }

    /// The path this store was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of rows of the stored matrix.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns of the stored matrix.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries of the stored matrix.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Directory entry of shard `i`.
    pub fn shard_meta(&self, i: usize) -> &ShardMeta {
        &self.shards[i]
    }

    /// The shard row boundaries in `ShardedCsr::starts` form:
    /// `starts[i]..starts[i+1]` is shard `i`'s global row range.
    pub fn starts(&self) -> Vec<usize> {
        let mut starts = Vec::with_capacity(self.shards.len() + 1);
        starts.push(0);
        starts.extend(self.shards.iter().map(|s| s.rows.end));
        starts
    }

    /// Reads the raw bytes of shard `i` at its recorded extent —
    /// position-independent (`pread`-style), so concurrent reads from
    /// the prefetch thread and demand loads never race on a seek
    /// cursor.
    fn read_block_bytes(&self, i: usize) -> Result<Vec<u8>, ShardFileError> {
        let meta = &self.shards[i];
        let mut buf = vec![0u8; meta.byte_len as usize];
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file
                .read_exact_at(&mut buf, meta.byte_off)
                .map_err(|e| {
                    if e.kind() == std::io::ErrorKind::UnexpectedEof {
                        ShardFileError::Truncated("shard block")
                    } else {
                        ShardFileError::Io(e)
                    }
                })?;
        }
        #[cfg(not(unix))]
        {
            // Portable fallback: a fresh handle per read keeps the main
            // handle's cursor untouched.
            use std::io::{Seek, SeekFrom};
            let mut f = File::open(&self.path)?;
            f.seek(SeekFrom::Start(meta.byte_off))?;
            f.read_exact(&mut buf).map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    ShardFileError::Truncated("shard block")
                } else {
                    ShardFileError::Io(e)
                }
            })?;
        }
        Ok(buf)
    }

    /// Pages shard `i` in: reads its block, verifies the checksum, and
    /// deserializes it into exactly the `CsrMatrix` block
    /// [`ShardedCsr`] holds resident — same local row pointers, same
    /// global columns, bit-identical values — so every kernel that runs
    /// on it produces bitwise the monolithic result.
    pub fn read_shard(&self, i: usize) -> Result<CsrMatrix, ShardFileError> {
        let meta = &self.shards[i];
        let bytes = self.read_block_bytes(i)?;
        if fnv1a(&bytes) != meta.checksum {
            return Err(ShardFileError::ChecksumMismatch(format!("shard {i} block")));
        }
        let rows = meta.rows.end - meta.rows.start;
        let mut off = 0usize;
        let mut row_ptr = Vec::with_capacity(rows + 1);
        for _ in 0..=rows {
            row_ptr.push(to_usize(read_u64(&bytes, &mut off), "row pointer")?);
        }
        if row_ptr[0] != 0 || row_ptr[rows] != meta.nnz || row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(ShardFileError::Corrupt(format!(
                "shard {i} row pointers are not a monotone prefix of 0..{}",
                meta.nnz
            )));
        }
        let mut col_idx = Vec::with_capacity(meta.nnz);
        for _ in 0..meta.nnz {
            let c = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
            if (c as usize) >= self.n_cols {
                return Err(ShardFileError::Corrupt(format!(
                    "shard {i} column {c} beyond n_cols {}",
                    self.n_cols
                )));
            }
            col_idx.push(c);
            off += 4;
        }
        let mut values = Vec::with_capacity(meta.nnz);
        for _ in 0..meta.nnz {
            values.push(f64::from_bits(read_u64(&bytes, &mut off)));
        }
        debug_assert_eq!(off, bytes.len());
        Ok(CsrMatrix::from_trusted_parts(
            rows,
            self.n_cols,
            row_ptr,
            col_idx,
            values,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CsrMatrix {
        let mut coo = CooMatrix::new(9, 9);
        coo.push_symmetric(0, 1, 2.0);
        coo.push_symmetric(0, 2, 1.0);
        coo.push_symmetric(1, 4, 3.5);
        coo.push_symmetric(2, 4, 1.5);
        coo.push_symmetric(4, 5, 0.25);
        coo.push_symmetric(6, 8, -1.75);
        coo.push(7, 7, 0.125);
        coo.to_csr()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lsbp-shardfile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let m = sample();
        for shards in [1usize, 2, 3, 9, 20] {
            let path = tmp(&format!("roundtrip-{shards}.lsbp"));
            ShardFile::write_csr(&path, &m, shards).unwrap();
            let f = ShardFile::open(&path).unwrap();
            assert_eq!(f.n_rows(), 9);
            assert_eq!(f.n_cols(), 9);
            assert_eq!(f.nnz(), m.nnz());
            let want = ShardedCsr::from_csr(&m, shards);
            assert_eq!(f.num_shards(), want.num_shards(), "{shards} shards");
            for i in 0..f.num_shards() {
                assert_eq!(f.shard_meta(i).rows, want.shard_rows(i));
                let block = f.read_shard(i).unwrap();
                assert_eq!(&block, want.shard(i), "shard {i} of {shards}");
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn empty_matrix_roundtrips() {
        let m = CsrMatrix::empty(0, 0);
        let path = tmp("empty.lsbp");
        ShardFile::write_csr(&path, &m, 4).unwrap();
        let f = ShardFile::open(&path).unwrap();
        assert_eq!(f.n_rows(), 0);
        assert_eq!(f.num_shards(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_typed() {
        let path = tmp("badmagic.lsbp");
        std::fs::write(&path, b"NOTASHRDxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx").unwrap();
        assert!(matches!(
            ShardFile::open(&path),
            Err(ShardFileError::BadMagic)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        let m = sample();
        let path = tmp("truncated.lsbp");
        ShardFile::write_csr(&path, &m, 3).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Chop the file at a range of lengths: every prefix must fail
        // with a typed error, never panic, never "succeed".
        for keep in [0, 4, 11, 40, FIXED_HEADER_LEN, full.len() - 1] {
            std::fs::write(&path, &full[..keep]).unwrap();
            match ShardFile::open(&path) {
                Err(_) => {}
                Ok(f) => {
                    // Header may survive the chop; the blocks must not.
                    let mut any_err = false;
                    for i in 0..f.num_shards() {
                        any_err |= f.read_shard(i).is_err();
                    }
                    assert!(any_err, "keep={keep}: truncation must surface somewhere");
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flips_fail_checksums() {
        let m = sample();
        let path = tmp("bitflip.lsbp");
        ShardFile::write_csr(&path, &m, 2).unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Flip one byte in the header (after magic/version) → header
        // checksum mismatch or structural corruption.
        let mut dirty = clean.clone();
        dirty[14] ^= 0x40;
        std::fs::write(&path, &dirty).unwrap();
        assert!(ShardFile::open(&path).is_err());
        // Flip one byte in the last block → that shard fails its
        // checksum; the file still opens and other shards still read.
        let mut dirty = clean.clone();
        let last = dirty.len() - 1;
        dirty[last] ^= 0x01;
        std::fs::write(&path, &dirty).unwrap();
        let f = ShardFile::open(&path).unwrap();
        assert!(f.read_shard(0).is_ok());
        assert!(matches!(
            f.read_shard(1),
            Err(ShardFileError::ChecksumMismatch(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unsupported_version_is_typed() {
        let m = sample();
        let path = tmp("version.lsbp");
        ShardFile::write_csr(&path, &m, 1).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        // Re-stamp the header checksum so only the version differs.
        let header_len = bytes.len() - {
            let f = ShardFile::open(&path).unwrap();
            (0..f.num_shards())
                .map(|i| f.shard_meta(i).byte_len as usize)
                .sum::<usize>()
        };
        let checksum = fnv1a(&bytes[..header_len - 8]);
        let at = header_len - 8;
        bytes[at..at + 8].copy_from_slice(&checksum.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            ShardFile::open(&path),
            Err(ShardFileError::UnsupportedVersion(99))
        ));
        std::fs::remove_file(&path).ok();
    }
}

//! Matrix-free "edge matrix" operator `A_edge` of Appendix G.
//!
//! Mooij & Kappen's sufficient convergence bound for standard BP examines
//! the spectral radius of a `2|E| × 2|E|` matrix over *directed* edges:
//! edge `(u,v)` is connected to all edges `(w,u)` with `w ≠ v` (a message
//! leaving `u` toward `v` is influenced by all messages arriving at `u`
//! except the one coming back from `v`).
//!
//! Materializing `A_edge` is quadratic in node degrees; instead we apply it
//! in `O(|E|)` per multiply:
//!
//! ```text
//! y[(u,v)] = Σ_{w ∈ N(u)} x[(w,u)]  −  x[(v,u)]
//!          = in_sum[u] − x[rev(u,v)]
//! ```
//!
//! with a precomputed reverse-edge index `rev`.

use crate::csr::CsrMatrix;
use lsbp_linalg::{power_iteration, PowerIterationOptions};

/// The matrix-free edge operator for a symmetric adjacency structure.
///
/// Directed edges are enumerated in CSR order: edge index `e` corresponds to
/// the `e`-th stored entry `(u → v)` of the adjacency matrix.
pub struct EdgeMatrixOp<'a> {
    adj: &'a CsrMatrix,
    /// Source node of each directed edge (CSR row of the entry).
    src: Vec<u32>,
    /// `rev[e]` = index of the opposite directed edge `(v → u)`.
    rev: Vec<u32>,
}

impl<'a> EdgeMatrixOp<'a> {
    /// Builds the operator.
    ///
    /// # Panics
    /// Panics if `adj` is not structurally symmetric (every stored entry
    /// `(u,v)` must have a stored reverse `(v,u)`), or has more than
    /// `u32::MAX` stored entries.
    pub fn new(adj: &'a CsrMatrix) -> Self {
        assert!(
            adj.nnz() <= u32::MAX as usize,
            "edge operator limited to u32 edge ids"
        );
        let mut src = Vec::with_capacity(adj.nnz());
        let mut rev = Vec::with_capacity(adj.nnz());
        for u in 0..adj.n_rows() {
            for &v in adj.row_cols(u) {
                let r = adj
                    .entry_index(v as usize, u)
                    .expect("edge matrix requires structurally symmetric adjacency");
                src.push(u as u32);
                rev.push(r as u32);
            }
        }
        Self { adj, src, rev }
    }

    /// Dimension of the operator = number of directed edges (2|E| for an
    /// undirected graph).
    pub fn dim(&self) -> usize {
        self.adj.nnz()
    }

    /// Applies `y = A_edge · x`.
    ///
    /// # Panics
    /// Panics if `x.len()` or `y.len()` differ from [`EdgeMatrixOp::dim`].
    pub fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.dim(), "edge operator input dimension");
        assert_eq!(y.len(), self.dim(), "edge operator output dimension");
        // in_sum[u] = Σ over directed edges (w → u) of x[(w → u)].
        // Directed edge e goes src[e] → col; it is an in-edge of its column,
        // which equals src[rev[e]]'s row... simpler: edge rev[e] is (v → u)
        // for e = (u → v); iterate edges and scatter into the *target* node,
        // which is the source of the reverse edge.
        let n = self.adj.n_rows();
        let mut in_sum = vec![0.0f64; n];
        for (e, &xe) in x.iter().enumerate() {
            // e = (u → v): it is an in-edge of v = src[rev[e]].
            let v = self.src[self.rev[e] as usize] as usize;
            in_sum[v] += xe;
        }
        for e in 0..self.dim() {
            let u = self.src[e] as usize;
            y[e] = in_sum[u] - x[self.rev[e] as usize];
        }
    }

    /// Spectral radius ρ(A_edge) via power iteration.
    pub fn spectral_radius(&self) -> f64 {
        power_iteration(
            self.dim(),
            |x, out| self.apply(x, out),
            PowerIterationOptions {
                max_iter: 2000,
                ..Default::default()
            },
        )
    }

    /// Densifies the operator (tests only).
    pub fn to_dense(&self) -> lsbp_linalg::Mat {
        let m = self.dim();
        let mut out = lsbp_linalg::Mat::zeros(m, m);
        let mut x = vec![0.0; m];
        let mut y = vec![0.0; m];
        for j in 0..m {
            x[j] = 1.0;
            self.apply(&x, &mut y);
            for i in 0..m {
                out[(i, j)] = y[i];
            }
            x[j] = 0.0;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn path3() -> CsrMatrix {
        let mut coo = CooMatrix::new(3, 3);
        coo.push_symmetric(0, 1, 1.0);
        coo.push_symmetric(1, 2, 1.0);
        coo.to_csr()
    }

    /// On a path u−v−w, message (0→1) is fed only by (2→1)? No: edge (0,1)
    /// receives from edges (w,0) with w≠1 — there are none. Edge (1,2)
    /// receives from (0,1). Check the dense structure entry by entry.
    #[test]
    fn dense_structure_path() {
        let adj = path3();
        let op = EdgeMatrixOp::new(&adj);
        assert_eq!(op.dim(), 4);
        let d = op.to_dense();
        // Directed edge order (CSR): e0=(0→1), e1=(1→0), e2=(1→2), e3=(2→1).
        // y[e] over edges (w→u) with e=(u→v), w≠v.
        // e0=(0→1): in-edges of 0 = {(1→0)}; exclude w=v=1 → empty row.
        for j in 0..4 {
            assert_eq!(d[(0, j)], 0.0);
        }
        // e1=(1→0): in-edges of 1 = {(0→1),(2→1)}; exclude (0→1) → {(2→1)} = e3.
        assert_eq!(d[(1, 3)], 1.0);
        assert_eq!(d[(1, 0)], 0.0);
        // e2=(1→2): exclude (2→1) → {(0→1)} = e0.
        assert_eq!(d[(2, 0)], 1.0);
        assert_eq!(d[(2, 3)], 0.0);
        // e3=(2→1): in-edges of 2 = {(1→2)}; exclude reverse → empty.
        for j in 0..4 {
            assert_eq!(d[(3, j)], 0.0);
        }
    }

    /// A tree has a nilpotent edge matrix (no directed cycles once the
    /// backtracking edge is excluded), so ρ(A_edge) = 0.
    #[test]
    fn tree_edge_matrix_is_nilpotent() {
        let adj = path3();
        let op = EdgeMatrixOp::new(&adj);
        assert!(op.spectral_radius() < 1e-6);
    }

    /// On a cycle C_n the edge matrix is a pair of disjoint directed cycles,
    /// so ρ(A_edge) = 1 (permutation matrix).
    #[test]
    fn cycle_edge_matrix_rho_one() {
        let n = 6;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push_symmetric(i, (i + 1) % n, 1.0);
        }
        let op_adj = coo.to_csr();
        let op = EdgeMatrixOp::new(&op_adj);
        let rho = op.spectral_radius();
        assert!((rho - 1.0).abs() < 1e-4, "rho = {rho}");
    }

    /// Complete graph K4: each node has degree 3, the edge matrix is the
    /// non-backtracking matrix whose spectral radius is d−1 = 2 for a
    /// d-regular graph.
    #[test]
    fn complete_graph_nonbacktracking_radius() {
        let n = 4;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                coo.push_symmetric(i, j, 1.0);
            }
        }
        let adj = coo.to_csr();
        let op = EdgeMatrixOp::new(&adj);
        let rho = op.spectral_radius();
        assert!((rho - 2.0).abs() < 1e-5, "rho = {rho}");
        // Appendix G's empirical remark: ρ(A_edge) + 1 ≈ ρ(A) (here exact:
        // K4 has ρ(A) = 3).
        assert!((adj.spectral_radius() - 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "structurally symmetric")]
    fn asymmetric_adjacency_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0); // no reverse entry
        let adj = coo.to_csr();
        let _ = EdgeMatrixOp::new(&adj);
    }
}

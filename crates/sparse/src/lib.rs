#![warn(missing_docs)]

//! Sparse matrix kernels for the LSBP workspace.
//!
//! The paper's performance claims rest on one observation: a LinBP iteration
//! is a sparse-matrix × dense-matrix product (`A · B̂`, `O(nnz·k)`) instead of
//! per-edge message vectors. This crate provides exactly those kernels:
//!
//! * [`CooMatrix`] — a triplet builder for assembling adjacency matrices,
//! * [`CsrMatrix`] — compressed sparse row storage (compact `u32` column
//!   indices, 4-lane inner kernels) with SpMV and SpMM (CSR × dense)
//!   products,
//! * the fused LinBP step ([`FusedLinBpStep`]) — one row-partitioned,
//!   cache-resident pass per iteration instead of SpMM + echo + norm
//!   sweeps,
//! * [`PropagationOperator`] — the unified linear-operator surface every
//!   propagation solver runs on (SpMV / SpMM / fused step / transpose /
//!   row statistics / neighbor access), with [`CsrMatrix`] as the
//!   monolithic reference implementation and [`ShardedCsr`] as the
//!   nnz-balanced row-range sharded backend (bitwise identical at any
//!   shard × thread combination),
//! * [`EdgeMatrixOp`] — the matrix-free "edge matrix" `A_edge` of
//!   Appendix G (2|E| × 2|E|), used to evaluate the Mooij–Kappen
//!   convergence bound for standard BP without materializing it,
//! * the out-of-core engine — [`ShardFile`] (the versioned, checksummed
//!   on-disk shard store) and [`PagedCsr`] (the sharded execution model
//!   behind a budgeted [`paged::BufferPool`] with LRU eviction, pins and
//!   background prefetch), bitwise identical to the resident backends at
//!   any budget × shard × thread combination.

pub mod coo;
pub mod csr;
pub mod edge_op;
pub mod frontier;
pub mod fused;
pub mod operator;
pub mod paged;
pub mod shard_file;
pub mod sharded;

pub use coo::CooMatrix;
pub use csr::{CsrError, CsrMatrix, MAX_DIM};
pub use edge_op::EdgeMatrixOp;
pub use frontier::{FrontierPlan, FrontierState, FrontierStep, NodeBitset};
pub use fused::FusedLinBpStep;
pub use operator::{PropagationOperator, RowIter};
pub use paged::{PagedCsr, PagedOptions, PagerStats};
pub use shard_file::{ShardFile, ShardFileError};
pub use sharded::ShardedCsr;

#![warn(missing_docs)]

//! Sparse matrix kernels for the LSBP workspace.
//!
//! The paper's performance claims rest on one observation: a LinBP iteration
//! is a sparse-matrix × dense-matrix product (`A · B̂`, `O(nnz·k)`) instead of
//! per-edge message vectors. This crate provides exactly those kernels:
//!
//! * [`CooMatrix`] — a triplet builder for assembling adjacency matrices,
//! * [`CsrMatrix`] — compressed sparse row storage with SpMV and SpMM
//!   (CSR × dense) products,
//! * [`EdgeMatrixOp`] — the matrix-free "edge matrix" `A_edge` of
//!   Appendix G (2|E| × 2|E|), used to evaluate the Mooij–Kappen
//!   convergence bound for standard BP without materializing it.

pub mod coo;
pub mod csr;
pub mod edge_op;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use edge_op::EdgeMatrixOp;

//! Coordinate-format (triplet) sparse matrix builder.

use crate::csr::{CsrError, CsrMatrix};

/// A sparse matrix under construction: an unordered list of
/// `(row, col, value)` triplets. Duplicate coordinates are *summed* when
/// converting to CSR — the natural semantics for accumulating parallel
/// edges / weighted multi-edges (Sect. 5.2 of the paper: "we have to add up
/// parallel paths").
#[derive(Clone, Debug, Default)]
pub struct CooMatrix {
    n_rows: usize,
    n_cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Creates an empty `n_rows × n_cols` builder.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty builder with space reserved for `cap` triplets.
    pub fn with_capacity(n_rows: usize, n_cols: usize, cap: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored triplets (before duplicate merging).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no triplets have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds `value` at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.n_rows && col < self.n_cols,
            "COO coordinate out of bounds"
        );
        self.entries.push((row, col, value));
    }

    /// Adds `value` at `(row, col)` *and* `(col, row)` — an undirected edge.
    pub fn push_symmetric(&mut self, row: usize, col: usize, value: f64) {
        self.push(row, col, value);
        if row != col {
            self.push(col, row, value);
        }
    }

    /// Converts to CSR, sorting triplets and summing duplicates.
    /// Entries whose merged value is exactly 0.0 are kept (callers that want
    /// them pruned can use [`CsrMatrix::prune_zeros`]); this keeps the
    /// structure of "explicit zeros" deterministic.
    ///
    /// # Panics
    /// Panics if a dimension exceeds the CSR `u32` index limit
    /// ([`crate::csr::MAX_DIM`]) — use [`CooMatrix::try_to_csr`] for a
    /// recoverable error on oversized graphs.
    pub fn to_csr(&self) -> CsrMatrix {
        match self.try_to_csr() {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`CooMatrix::to_csr`] with a recoverable error when a dimension
    /// exceeds the CSR `u32` index limit.
    pub fn try_to_csr(&self) -> Result<CsrMatrix, CsrError> {
        let mut entries = self.entries.clone();
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        // Merge duplicates in place.
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(entries.len());
        for (r, c, v) in entries {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut row_ptr = vec![0usize; self.n_rows + 1];
        for &(r, _, _) in &merged {
            row_ptr[r + 1] += 1;
        }
        for i in 0..self.n_rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx: Vec<usize> = merged.iter().map(|e| e.1).collect();
        let values: Vec<f64> = merged.iter().map(|e| e.2).collect();
        CsrMatrix::try_from_raw_parts(self.n_rows, self.n_cols, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder() {
        let coo = CooMatrix::new(3, 3);
        assert!(coo.is_empty());
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.n_rows(), 3);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 2.0);
        coo.push(0, 1, 3.0);
        coo.push(1, 0, 1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 1), 5.0);
        assert_eq!(csr.get(1, 0), 1.0);
        assert_eq!(csr.get(0, 0), 0.0);
    }

    #[test]
    fn push_symmetric_adds_both_directions() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push_symmetric(0, 2, 1.5);
        coo.push_symmetric(1, 1, 7.0); // self-loop pushed once
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 2), 1.5);
        assert_eq!(csr.get(2, 0), 1.5);
        assert_eq!(csr.get(1, 1), 7.0);
        assert_eq!(csr.nnz(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(2, 0, 1.0);
    }

    #[test]
    fn unsorted_input_sorted_in_csr() {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(2, 3, 1.0);
        coo.push(0, 1, 2.0);
        coo.push(2, 0, 3.0);
        coo.push(0, 0, 4.0);
        let csr = coo.to_csr();
        assert_eq!(csr.row_cols(0), &[0, 1]);
        assert_eq!(csr.row_cols(2), &[0, 3]);
        assert_eq!(csr.row_values(2), &[3.0, 1.0]);
    }
}

//! The unified linear-operator surface of the propagation engine.
//!
//! LinBP's whole pitch is that belief propagation becomes plain sparse
//! linear algebra — which makes scale-out a *storage/layout* problem, not
//! an algorithm problem. [`PropagationOperator`] is the seam that turns
//! that observation into architecture: every propagator (LinBP, LinBP\*,
//! RWR, SBP, the batched multi-query family) is written against this
//! trait, and the storage layer behind it is interchangeable:
//!
//! * [`CsrMatrix`](crate::CsrMatrix) — the monolithic in-memory reference
//!   implementation (the semantics every other backend must reproduce
//!   **bitwise**), and
//! * [`ShardedCsr`](crate::ShardedCsr) — the graph split into
//!   nnz-balanced row-range shards, the layout that out-of-core and
//!   distributed deployments partition along.
//!
//! The surface is exactly what the propagators consume: the two sparse
//! products (SpMV / SpMM), the fused LinBP step, transposition, the
//! row-statistics vectors (degrees for echo cancellation and RWR), and
//! per-row neighbor access (BFS layering for SBP).
//!
//! **Bitwise contract.** Implementations must accumulate every output
//! element in the canonical per-element order of the `CsrMatrix` kernels
//! (CSR entry order per output element, 4-lane reassociation only where
//! the monolithic kernels use it) and combine any cross-partition
//! reductions with order-independent operations. Under that contract a
//! solver's result is a function of the *graph*, not of the storage
//! layout, the shard count, or the thread count — which is what lets a
//! deployment re-shard a live system without changing a single answer.

use crate::csr::CsrMatrix;
use crate::frontier::{record_changed_full, FrontierPlan, FrontierStep};
use crate::fused::FusedLinBpStep;
use lsbp_linalg::{Mat, ParallelismConfig};

/// Iterator over one row's `(col, value)` pairs, columns widened to
/// `usize` — the trait-level counterpart of `CsrMatrix::row_iter`,
/// concrete so the trait stays object-safe-free of generics.
///
/// Resident backends hand out a **borrowed** view straight into their
/// arrays (zero-copy); backends whose storage can move or be evicted
/// underneath a borrow — the paged store, where the buffer pool may
/// drop a shard at any time — return an **owned** copy of the row
/// instead. That split is why the trait exposes row access through this
/// iterator rather than through `&[u32]`/`&[f64]` slices: a slice
/// borrow from an evictable pool region cannot be made sound.
pub struct RowIter<'a> {
    inner: RowIterInner<'a>,
}

enum RowIterInner<'a> {
    Borrowed {
        cols: std::slice::Iter<'a, u32>,
        values: std::slice::Iter<'a, f64>,
    },
    Owned {
        pos: usize,
        cols: Vec<u32>,
        values: Vec<f64>,
    },
}

impl<'a> RowIter<'a> {
    /// A zero-copy view over a resident row (the `CsrMatrix` /
    /// `ShardedCsr` path).
    #[inline]
    pub fn borrowed(cols: &'a [u32], values: &'a [f64]) -> RowIter<'a> {
        debug_assert_eq!(cols.len(), values.len(), "row slices must be parallel");
        RowIter {
            inner: RowIterInner::Borrowed {
                cols: cols.iter(),
                values: values.iter(),
            },
        }
    }

    /// An owning iterator over a row copied out of evictable storage
    /// (the `PagedCsr` path — the copy happens under the pool pin, so
    /// the iterator stays valid after the shard is evicted).
    #[inline]
    pub fn owned(cols: Vec<u32>, values: Vec<f64>) -> RowIter<'static> {
        debug_assert_eq!(cols.len(), values.len(), "row vectors must be parallel");
        RowIter {
            inner: RowIterInner::Owned {
                pos: 0,
                cols,
                values,
            },
        }
    }
}

impl Iterator for RowIter<'_> {
    type Item = (usize, f64);

    #[inline]
    fn next(&mut self) -> Option<(usize, f64)> {
        match &mut self.inner {
            RowIterInner::Borrowed { cols, values } => {
                Some((*cols.next()? as usize, *values.next()?))
            }
            RowIterInner::Owned { pos, cols, values } => {
                let item = (*cols.get(*pos)? as usize, values[*pos]);
                *pos += 1;
                Some(item)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            RowIterInner::Borrowed { cols, .. } => cols.size_hint(),
            RowIterInner::Owned { pos, cols, .. } => {
                let left = cols.len() - pos;
                (left, Some(left))
            }
        }
    }
}

impl ExactSizeIterator for RowIter<'_> {}

/// A sparse graph operator a propagation solver can run on — see the
/// module docs for the architecture and the bitwise contract.
///
/// `Sync` is a supertrait because solvers hand `&self` to persistent-pool
/// tasks (SBP's layer recomputation spawns directly against the
/// operator).
pub trait PropagationOperator: Sync {
    /// Number of rows.
    fn n_rows(&self) -> usize;

    /// Number of columns.
    fn n_cols(&self) -> usize;

    /// Number of stored entries.
    fn nnz(&self) -> usize;

    /// Number of stored entries in row `r` (the node degree for adjacency
    /// matrices without explicit zeros).
    fn row_nnz(&self, r: usize) -> usize;

    /// Iterates `(col, value)` pairs of row `r` in ascending column
    /// order (columns widened to `usize` for ergonomic indexing).
    ///
    /// This is the trait's *only* row-access surface — deliberately an
    /// iterator, not slices, so backends with evictable storage (the
    /// paged store) can hand out an owned copy where resident backends
    /// hand out a zero-copy borrow. See [`RowIter`].
    fn row_iter(&self, r: usize) -> RowIter<'_>;

    /// Sparse matrix × dense vector into a caller-provided buffer:
    /// `y = A·x`, executed per `cfg`.
    fn spmv_into_with(&self, x: &[f64], y: &mut [f64], cfg: &ParallelismConfig);

    /// Sparse × dense matrix product into a caller-provided output
    /// (overwrites `out`): `out = A·B`, executed per `cfg`. This is the
    /// LinBP workhorse (`A·B̂`, `O(nnz·k)`).
    fn spmm_into_with(&self, b: &Mat, out: &mut Mat, cfg: &ParallelismConfig);

    /// One fused LinBP update `out = Ê + A·B·Ĥ [− D·B·Ĥ²]` (damped), with
    /// the per-query max-abs belief change accumulated into `deltas` —
    /// the solver-facing per-iteration kernel. Semantics and panics match
    /// [`CsrMatrix::linbp_step_fused_with`] exactly.
    fn linbp_step_fused_with(
        &self,
        b: &Mat,
        step: &FusedLinBpStep<'_>,
        out: &mut Mat,
        deltas: &mut [f64],
        cfg: &ParallelismConfig,
    );

    /// The static block-dependency plan active-frontier execution runs
    /// against (see [`crate::frontier`]): rows grouped into
    /// [`FrontierPlan::block_rows_for`]-sized blocks, each recording the
    /// blocks its rows gather from. Built once per solve in `O(nnz)`.
    /// The default walks [`PropagationOperator::row_iter`]; backends with
    /// cheaper bulk row access (paged shards) override it.
    fn frontier_plan(&self) -> FrontierPlan {
        let n = self.n_rows();
        let mut plan = FrontierPlan::empty(n, FrontierPlan::block_rows_for(n));
        for r in 0..n {
            let blk = plan.block_of(r);
            plan.set_dep(blk, blk);
            for (c, _) in self.row_iter(r) {
                let dep = plan.block_of(c);
                plan.set_dep(blk, dep);
            }
        }
        plan
    }

    /// The frontier-aware fused LinBP step: `out` and `deltas` must be
    /// **bitwise identical** to [`PropagationOperator::linbp_step_fused_with`]
    /// on the same inputs, with rows whose inputs are bitwise unchanged
    /// allowed (not required) to be skipped, skip/active row counts
    /// accumulated into `fr`, and each computed-or-skipped row's changed
    /// bit recorded into `fr.next_changed` exactly as
    /// [`record_changed_full`] would.
    ///
    /// The default implementation **is** [`record_changed_full`] over the
    /// full step — the reference semantics (every row counted active, no
    /// skipping): backends without a native frontier path stay correct,
    /// merely unaccelerated.
    fn linbp_step_fused_frontier_with(
        &self,
        b: &Mat,
        step: &FusedLinBpStep<'_>,
        out: &mut Mat,
        deltas: &mut [f64],
        fr: &mut FrontierStep<'_>,
        cfg: &ParallelismConfig,
    ) {
        self.linbp_step_fused_with(b, step, out, deltas, cfg);
        let k = step.h.rows();
        record_changed_full(fr, b, out, k);
    }

    /// Transpose, materialized as a monolithic [`CsrMatrix`] (the
    /// assembly step a distributed backend would run at import time).
    fn transpose_with(&self, cfg: &ParallelismConfig) -> CsrMatrix;

    /// Plain weighted row sums `Σ_t w(s,t)` (RWR's walk normalization),
    /// accumulated in the canonical 4-lane order.
    fn row_sums(&self) -> Vec<f64>;

    /// The weighted degree vector of Sect. 5.2: `d_s = Σ_t w(s,t)²` (the
    /// echo-cancellation degrees).
    fn squared_weight_degrees(&self) -> Vec<f64>;
}

impl PropagationOperator for CsrMatrix {
    #[inline]
    fn n_rows(&self) -> usize {
        CsrMatrix::n_rows(self)
    }

    #[inline]
    fn n_cols(&self) -> usize {
        CsrMatrix::n_cols(self)
    }

    #[inline]
    fn nnz(&self) -> usize {
        CsrMatrix::nnz(self)
    }

    #[inline]
    fn row_nnz(&self, r: usize) -> usize {
        CsrMatrix::row_nnz(self, r)
    }

    #[inline]
    fn row_iter(&self, r: usize) -> RowIter<'_> {
        RowIter::borrowed(CsrMatrix::row_cols(self, r), CsrMatrix::row_values(self, r))
    }

    fn spmv_into_with(&self, x: &[f64], y: &mut [f64], cfg: &ParallelismConfig) {
        CsrMatrix::spmv_into_with(self, x, y, cfg)
    }

    fn spmm_into_with(&self, b: &Mat, out: &mut Mat, cfg: &ParallelismConfig) {
        CsrMatrix::spmm_into_with(self, b, out, cfg)
    }

    fn linbp_step_fused_with(
        &self,
        b: &Mat,
        step: &FusedLinBpStep<'_>,
        out: &mut Mat,
        deltas: &mut [f64],
        cfg: &ParallelismConfig,
    ) {
        CsrMatrix::linbp_step_fused_with(self, b, step, out, deltas, cfg)
    }

    fn frontier_plan(&self) -> FrontierPlan {
        let n = CsrMatrix::n_rows(self);
        let mut plan = FrontierPlan::empty(n, FrontierPlan::block_rows_for(n));
        for r in 0..n {
            plan.add_row(r, CsrMatrix::row_cols(self, r));
        }
        plan
    }

    fn linbp_step_fused_frontier_with(
        &self,
        b: &Mat,
        step: &FusedLinBpStep<'_>,
        out: &mut Mat,
        deltas: &mut [f64],
        fr: &mut FrontierStep<'_>,
        cfg: &ParallelismConfig,
    ) {
        CsrMatrix::linbp_step_fused_frontier_with(self, b, step, out, deltas, fr, cfg)
    }

    fn transpose_with(&self, cfg: &ParallelismConfig) -> CsrMatrix {
        CsrMatrix::transpose_with(self, cfg)
    }

    fn row_sums(&self) -> Vec<f64> {
        CsrMatrix::row_sums(self)
    }

    fn squared_weight_degrees(&self) -> Vec<f64> {
        CsrMatrix::squared_weight_degrees(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn small() -> CsrMatrix {
        let mut coo = CooMatrix::new(3, 3);
        coo.push_symmetric(0, 1, 2.0);
        coo.push_symmetric(1, 2, 3.0);
        coo.push(2, 2, 1.0);
        coo.to_csr()
    }

    /// The trait impl on `CsrMatrix` is a pure forwarder: every method
    /// answers exactly like the inherent API.
    #[test]
    fn csr_impl_forwards() {
        let m = small();
        let op: &dyn PropagationOperator = &m;
        assert_eq!(op.n_rows(), 3);
        assert_eq!(op.nnz(), 5);
        assert_eq!(op.row_nnz(1), 2);
        assert_eq!(op.row_iter(1).collect::<Vec<_>>(), vec![(0, 2.0), (2, 3.0)]);
        assert_eq!(op.row_iter(2).collect::<Vec<_>>(), vec![(1, 3.0), (2, 1.0)]);
        let cfg = ParallelismConfig::serial();
        let mut y = vec![0.0; 3];
        op.spmv_into_with(&[1.0, 1.0, 1.0], &mut y, &cfg);
        assert_eq!(y, vec![2.0, 5.0, 4.0]);
        assert_eq!(op.row_sums(), m.row_sums());
        assert_eq!(op.squared_weight_degrees(), m.squared_weight_degrees());
        assert_eq!(op.transpose_with(&cfg), m.transpose());
    }

    /// Borrowed and owned row iterators walk the same row identically —
    /// the equivalence the paged backend's owned copies rely on.
    #[test]
    fn owned_row_iter_matches_borrowed() {
        let m = small();
        for r in 0..m.n_rows() {
            let borrowed: Vec<(usize, f64)> =
                RowIter::borrowed(m.row_cols(r), m.row_values(r)).collect();
            let owned_iter = RowIter::owned(m.row_cols(r).to_vec(), m.row_values(r).to_vec());
            assert_eq!(owned_iter.len(), borrowed.len(), "row {r}");
            assert_eq!(owned_iter.collect::<Vec<_>>(), borrowed, "row {r}");
        }
    }
}

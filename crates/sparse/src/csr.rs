//! Compressed sparse row matrix.
//!
//! The single data structure behind every large-graph computation in this
//! workspace: adjacency matrices are stored once in CSR and shared by BP
//! (neighbor iteration), LinBP (SpMM), SBP (BFS layering) and the spectral
//! convergence criteria (SpMV inside power iteration).

use lsbp_linalg::simd::{axpy4, gather_dot4, sum4, sum_abs4, sum_sq4};
use lsbp_linalg::{weight_balanced_ranges, Mat, ParallelismConfig};
use std::ops::Range;

/// The largest row/column count a [`CsrMatrix`] can carry: column indices
/// are stored as `u32` (halving index bandwidth in the SpMV/SpMM/transpose
/// hot loops), and transposition turns row indices into column indices, so
/// both dimensions must fit.
pub const MAX_DIM: usize = u32::MAX as usize;

/// Construction failure of a [`CsrMatrix`] — the error surface of the
/// compact-index representation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CsrError {
    /// A dimension exceeds [`MAX_DIM`]: the graph has too many
    /// rows/columns for `u32` indices (> ~4.29 billion).
    DimensionOverflow {
        /// `"rows"` or `"cols"`.
        dim: &'static str,
        /// The offending dimension size.
        size: usize,
    },
    /// An edge-delta coordinate lies outside the matrix — the recoverable
    /// rejection path for client-supplied deltas
    /// ([`CsrMatrix::try_with_edge_deltas`]).
    EntryOutOfBounds {
        /// The offending row index.
        row: usize,
        /// The offending column index.
        col: usize,
    },
}

impl std::fmt::Display for CsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsrError::DimensionOverflow { dim, size } => write!(
                f,
                "CSR {dim} count {size} exceeds the u32 index limit ({MAX_DIM})"
            ),
            CsrError::EntryOutOfBounds { row, col } => {
                write!(f, "edge delta ({row}, {col}) is outside the matrix")
            }
        }
    }
}

impl std::error::Error for CsrError {}

/// A sparse `n_rows × n_cols` matrix in compressed sparse row format.
///
/// Column indices are stored as `u32` — half the index bandwidth of a
/// `usize` build in every nnz-bound kernel. Both dimensions are capped at
/// [`MAX_DIM`] (≈ 4.29 billion); the checked constructor
/// ([`CsrMatrix::try_from_raw_parts`]) reports larger graphs as
/// [`CsrError::DimensionOverflow`] instead of truncating.
///
/// Invariants (maintained by all constructors):
/// * `n_rows <= MAX_DIM`, `n_cols <= MAX_DIM`;
/// * `row_ptr.len() == n_rows + 1`, `row_ptr[0] == 0`, non-decreasing;
/// * column indices within each row are strictly increasing;
/// * `col_idx.len() == values.len() == row_ptr[n_rows]`.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    fn check_dims(n_rows: usize, n_cols: usize) -> Result<(), CsrError> {
        if n_rows > MAX_DIM {
            return Err(CsrError::DimensionOverflow {
                dim: "rows",
                size: n_rows,
            });
        }
        if n_cols > MAX_DIM {
            return Err(CsrError::DimensionOverflow {
                dim: "cols",
                size: n_cols,
            });
        }
        Ok(())
    }

    /// Builds from raw CSR arrays, compacting column indices to `u32`.
    ///
    /// # Panics
    /// Panics if the CSR invariants do not hold (sizes, monotone `row_ptr`,
    /// strictly increasing in-row columns, in-bounds column indices) or a
    /// dimension exceeds [`MAX_DIM`] — use
    /// [`CsrMatrix::try_from_raw_parts`] for a recoverable error on
    /// oversized graphs.
    pub fn from_raw_parts(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        match Self::try_from_raw_parts(n_rows, n_cols, row_ptr, col_idx, values) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds from already-validated compact parts — the crate-internal
    /// constructor behind shard extraction ([`crate::ShardedCsr`]) and
    /// reassembly, where the arrays are carved out of an existing
    /// `CsrMatrix` and the invariants hold by construction.
    pub(crate) fn from_trusted_parts(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert!(Self::check_dims(n_rows, n_cols).is_ok());
        debug_assert_eq!(row_ptr.len(), n_rows + 1);
        debug_assert_eq!(row_ptr.first(), Some(&0));
        debug_assert_eq!(row_ptr.last(), Some(&col_idx.len()));
        debug_assert_eq!(col_idx.len(), values.len());
        Self {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// [`CsrMatrix::from_raw_parts`] with a recoverable error for graphs
    /// whose dimensions exceed the `u32` index limit ([`MAX_DIM`]).
    /// Structural invariant violations (non-monotone `row_ptr`, unsorted
    /// or out-of-bounds columns, length mismatches) still panic — those
    /// are caller bugs, not data-size conditions.
    pub fn try_from_raw_parts(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, CsrError> {
        Self::check_dims(n_rows, n_cols)?;
        assert_eq!(row_ptr.len(), n_rows + 1, "row_ptr length");
        assert_eq!(row_ptr[0], 0, "row_ptr must start at 0");
        assert_eq!(
            *row_ptr.last().unwrap(),
            col_idx.len(),
            "row_ptr end / col_idx length"
        );
        assert_eq!(col_idx.len(), values.len(), "col_idx / values length");
        for r in 0..n_rows {
            assert!(
                row_ptr[r] <= row_ptr[r + 1],
                "row_ptr must be non-decreasing"
            );
            let cols = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in cols.windows(2) {
                assert!(
                    w[0] < w[1],
                    "columns within a row must be strictly increasing"
                );
            }
            if let Some(&last) = cols.last() {
                assert!(last < n_cols, "column index out of bounds");
            }
        }
        // In-bounds (< n_cols <= MAX_DIM) implies every index fits u32.
        let col_idx = col_idx.into_iter().map(|c| c as u32).collect();
        Ok(Self {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// An `n × n` matrix with no stored entries.
    ///
    /// # Panics
    /// Panics if a dimension exceeds [`MAX_DIM`].
    pub fn empty(n_rows: usize, n_cols: usize) -> Self {
        if let Err(e) = Self::check_dims(n_rows, n_cols) {
            panic!("{e}");
        }
        Self {
            n_rows,
            n_cols,
            row_ptr: vec![0; n_rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The `n × n` identity.
    ///
    /// # Panics
    /// Panics if `n` exceeds [`MAX_DIM`].
    pub fn identity(n: usize) -> Self {
        if let Err(e) = Self::check_dims(n, n) {
            panic!("{e}");
        }
        Self {
            n_rows: n,
            n_cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Column indices of row `r` (sorted ascending), as the compact `u32`
    /// storage type.
    #[inline]
    pub fn row_cols(&self, r: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Values of row `r`, parallel to [`CsrMatrix::row_cols`].
    #[inline]
    pub fn row_values(&self, r: usize) -> &[f64] {
        &self.values[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Iterates `(col, value)` pairs of row `r` (columns widened to
    /// `usize` for ergonomic indexing).
    #[inline]
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.row_cols(r)
            .iter()
            .map(|&c| c as usize)
            .zip(self.row_values(r).iter().copied())
    }

    /// Number of stored entries in row `r` (the node degree for adjacency
    /// matrices without explicit zeros).
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// The CSR row-pointer array (`n_rows + 1` entries, `[0] == 0`,
    /// `[n_rows] == nnz`). Doubles as the cumulative-weight array for
    /// nnz-balanced row partitioning (see
    /// [`lsbp_linalg::weight_balanced_ranges`]).
    #[inline]
    pub fn row_offsets(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The full compact column-index array (crate-internal: shard
    /// extraction carves contiguous sub-slices out of it).
    #[inline]
    pub(crate) fn raw_col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The full value array, parallel to [`CsrMatrix::raw_col_idx`].
    #[inline]
    pub(crate) fn raw_values(&self) -> &[f64] {
        &self.values
    }

    /// Value at `(r, c)`, or 0.0 if not stored. `O(log row_nnz)` —
    /// binary search runs directly on the compact `u32` column slice
    /// (the lookup key is narrowed once; no per-probe casts), which is
    /// benchmark-visible in the reldb hash-join probe path.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let Ok(key) = u32::try_from(c) else {
            return 0.0; // beyond MAX_DIM: structurally absent
        };
        match self.row_cols(r).binary_search(&key) {
            Ok(pos) => self.row_values(r)[pos],
            Err(_) => 0.0,
        }
    }

    /// The index into `values`/`col_idx` of entry `(r, c)`, if stored.
    /// Searches the `u32` column slice directly, like [`CsrMatrix::get`].
    pub fn entry_index(&self, r: usize, c: usize) -> Option<usize> {
        let key = u32::try_from(c).ok()?;
        let start = self.row_ptr[r];
        self.row_cols(r)
            .binary_search(&key)
            .ok()
            .map(|pos| start + pos)
    }

    /// Sparse matrix × dense vector: `y = A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != n_cols`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_rows];
        self.spmv_into(x, &mut y);
        y
    }

    /// Sparse matrix × dense vector into a caller-provided buffer,
    /// parallelized according to the process default
    /// ([`ParallelismConfig::default`]).
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        self.spmv_into_with(x, y, &ParallelismConfig::default());
    }

    /// [`CsrMatrix::spmv_into`] with an explicit execution configuration.
    ///
    /// Rows are partitioned into nnz-balanced contiguous blocks computed
    /// by independent tasks writing disjoint output slices; each row's
    /// accumulation order is unchanged, so the result is bitwise identical
    /// for any thread count.
    pub fn spmv_into_with(&self, x: &[f64], y: &mut [f64], cfg: &ParallelismConfig) {
        assert_eq!(x.len(), self.n_cols, "spmv dimension mismatch");
        assert_eq!(y.len(), self.n_rows, "spmv output dimension mismatch");
        let parts = cfg.partitions(self.nnz() + self.n_rows);
        if parts <= 1 {
            self.spmv_rows(x, 0..self.n_rows, y);
            return;
        }
        let ranges = weight_balanced_ranges(&self.row_ptr, parts);
        let mut rest: &mut [f64] = y;
        cfg.pool().scope(|s| {
            for range in ranges {
                let (chunk, tail) = rest.split_at_mut(range.end - range.start);
                rest = tail;
                s.spawn(move || self.spmv_rows(x, range, chunk));
            }
        });
    }

    /// Serial SpMV kernel over the row block `rows`, writing into `block`
    /// (`block[i]` = output row `rows.start + i`). Shared verbatim by the
    /// serial path, every parallel task, and the sharded backend
    /// ([`crate::ShardedCsr`], which runs it on shard-local rows). Each
    /// row accumulates in the canonical 4-lane order
    /// ([`lsbp_linalg::simd::gather_dot4`]).
    pub(crate) fn spmv_rows(&self, x: &[f64], rows: Range<usize>, block: &mut [f64]) {
        for (r, out) in rows.zip(block.iter_mut()) {
            *out = gather_dot4(self.row_cols(r), self.row_values(r), x);
        }
    }

    /// Sparse × dense matrix product: `A · B` where `B` is `n_cols × k`.
    /// This is the LinBP workhorse (`A · B̂`), `O(nnz · k)`.
    pub fn spmm(&self, b: &Mat) -> Mat {
        let mut out = Mat::zeros(self.n_rows, b.cols());
        self.spmm_into(b, &mut out);
        out
    }

    /// [`CsrMatrix::spmm`] with an explicit execution configuration.
    pub fn spmm_with(&self, b: &Mat, cfg: &ParallelismConfig) -> Mat {
        let mut out = Mat::zeros(self.n_rows, b.cols());
        self.spmm_into_with(b, &mut out, cfg);
        out
    }

    /// Sparse × dense into a caller-provided output (overwrites `out`),
    /// parallelized according to the process default
    /// ([`ParallelismConfig::default`]).
    pub fn spmm_into(&self, b: &Mat, out: &mut Mat) {
        self.spmm_into_with(b, out, &ParallelismConfig::default());
    }

    /// [`CsrMatrix::spmm_into`] with an explicit execution configuration.
    ///
    /// Rows are partitioned into nnz-balanced contiguous blocks computed
    /// by independent tasks writing disjoint output slices; each output
    /// row's accumulation order is unchanged, so the result is bitwise
    /// identical for any thread count.
    pub fn spmm_into_with(&self, b: &Mat, out: &mut Mat, cfg: &ParallelismConfig) {
        assert_eq!(b.rows(), self.n_cols, "spmm dimension mismatch");
        assert_eq!(out.rows(), self.n_rows, "spmm output rows");
        assert_eq!(out.cols(), b.cols(), "spmm output cols");
        self.spmm_block_with(b, out.as_mut_slice(), cfg);
    }

    /// The partitioned SpMM body over *this matrix's* rows, writing the
    /// flat row-major `block` (exactly `n_rows · b.cols()` slots). The
    /// sharded backend calls this once per shard as its own
    /// persistent-pool region; [`CsrMatrix::spmm_into_with`] calls it
    /// once for the whole matrix.
    pub(crate) fn spmm_block_with(&self, b: &Mat, block: &mut [f64], cfg: &ParallelismConfig) {
        let parts = cfg.partitions((self.nnz() + self.n_rows) * b.cols());
        if parts <= 1 {
            self.spmm_rows(b, 0..self.n_rows, block);
            return;
        }
        let ranges = weight_balanced_ranges(&self.row_ptr, parts);
        let row_len = b.cols();
        let mut rest: &mut [f64] = block;
        cfg.pool().scope(|s| {
            for range in ranges {
                let (chunk, tail) = rest.split_at_mut((range.end - range.start) * row_len);
                rest = tail;
                s.spawn(move || self.spmm_rows(b, range, chunk));
            }
        });
    }

    /// Serial SpMM kernel over the row block `rows`, writing into `block`
    /// (the flat row-major storage of exactly those output rows). Routes
    /// the paper's common class counts (`b.cols() ∈ {2, 3, 4}`) to the
    /// width-specialized register kernel ([`CsrMatrix::spmm_rows_k`])
    /// and everything wider to the generic slice kernel — both compute
    /// the identical arithmetic in the identical per-element order, so
    /// the dispatch is invisible bitwise. Shared verbatim by the serial
    /// path, every parallel task, and the sharded backend
    /// ([`crate::ShardedCsr`]), and allocation-free.
    pub(crate) fn spmm_rows(&self, b: &Mat, rows: Range<usize>, block: &mut [f64]) {
        match b.cols() {
            2 => self.spmm_rows_k::<2>(b, rows, block),
            3 => self.spmm_rows_k::<3>(b, rows, block),
            4 => self.spmm_rows_k::<4>(b, rows, block),
            _ => self.spmm_rows_generic(b, rows, block),
        }
    }

    /// Width-specialized SpMM row kernel: the output row lives in a
    /// `[f64; K]` register array for the whole gather (the fused LinBP
    /// kernel's specialization applied to the standalone SpMM), written
    /// back once per row. Each output element still accumulates its
    /// contributions in CSR entry order — exactly the generic kernel's
    /// per-element order, so results are unchanged bitwise; only the
    /// per-entry output-row loads/stores disappear.
    fn spmm_rows_k<const K: usize>(&self, b: &Mat, rows: Range<usize>, block: &mut [f64]) {
        debug_assert_eq!(b.cols(), K);
        for (i, r) in rows.enumerate() {
            // Accumulate row r of the output: Σ_c A(r,c) · B(c,·).
            let mut acc = [0.0f64; K];
            for (&c, &v) in self.row_cols(r).iter().zip(self.row_values(r)) {
                let b_row = b.row(c as usize);
                for j in 0..K {
                    acc[j] += v * b_row[j];
                }
            }
            block[i * K..(i + 1) * K].copy_from_slice(&acc);
        }
    }

    /// The generic (any-width) SpMM row kernel: the output row borrow and
    /// the `col_idx`/`values` slices are hoisted out of the per-entry
    /// loop; the per-entry axpy runs 4 lanes wide across the *output
    /// columns* ([`axpy4`]), which vectorizes without reassociating any
    /// output element's sum — each element still accumulates its
    /// contributions in CSR entry order, exactly like the pre-SIMD
    /// kernel. Unlike the reduction kernels (SpMV, norms), there is no
    /// canonical-order reassociation here: per-output-element sums have
    /// no lane structure to exploit, and keeping the sequential order
    /// keeps the whole LinBP/batch family bit-stable. Since the
    /// width-specialized dispatch landed this only runs off the hot path
    /// (stacked multi-query widths and unusual class counts).
    fn spmm_rows_generic(&self, b: &Mat, rows: Range<usize>, block: &mut [f64]) {
        let row_len = b.cols();
        block.iter_mut().for_each(|x| *x = 0.0);
        for r in rows.clone() {
            // Accumulate row r of the output: Σ_c A(r,c) · B(c,·).
            let o_row = &mut block[(r - rows.start) * row_len..(r - rows.start + 1) * row_len];
            for (&c, &v) in self.row_cols(r).iter().zip(self.row_values(r)) {
                axpy4(v, b.row(c as usize), o_row);
            }
        }
    }

    /// Transpose (always returns a valid CSR with sorted rows),
    /// parallelized according to the process default
    /// ([`ParallelismConfig::default`]).
    pub fn transpose(&self) -> CsrMatrix {
        self.transpose_with(&ParallelismConfig::default())
    }

    /// [`CsrMatrix::transpose`] with an explicit execution configuration.
    ///
    /// The parallel path partitions the *output* rows (input columns) into
    /// nnz-balanced blocks after a serial counting pass; each task scatters
    /// only the entries landing in its block (located by binary search in
    /// each input row's sorted column slice), so writes are disjoint and
    /// the within-row order (ascending input row) matches the serial
    /// scatter exactly — the result is identical for any thread count.
    pub fn transpose_with(&self, cfg: &ParallelismConfig) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.n_cols + 1];
        for &c in &self.col_idx {
            row_ptr[c as usize + 1] += 1;
        }
        for i in 0..self.n_cols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut parts = cfg.partitions(self.nnz() + self.n_rows + self.n_cols);
        // The parallel scatter re-scans every input row per task (two
        // binary probes each), an O(parts · n_rows) overhead the serial
        // scatter does not pay — the total work *grows* with the split.
        // Splitting only wins when each task's share of scattered writes
        // dominates its own full rescan by a wide margin: measured on the
        // m9 Kronecker graph (average degree ~13), a 4-way split ran at
        // 0.92–0.98× serial because the probes rivaled the writes. So
        // require ≥ 8·n_rows stored entries per task (average degree ≥
        // 8·parts); otherwise shrink the partition count. A min-work
        // floor of 1 is the documented "force the parallel path"
        // test/benchmark hook and skips this profitability clamp.
        if cfg.min_work() > 1 {
            if let Some(write_bound) = self.nnz().checked_div(8 * self.n_rows) {
                parts = parts.min(write_bound.max(1));
            }
        }
        if parts <= 1 {
            let mut next = row_ptr.clone();
            for r in 0..self.n_rows {
                for (c, v) in self.row_iter(r) {
                    let pos = next[c];
                    col_idx[pos] = r as u32;
                    values[pos] = v;
                    next[c] += 1;
                }
            }
        } else {
            let ranges = weight_balanced_ranges(&row_ptr, parts);
            let mut rest_cols: &mut [u32] = &mut col_idx;
            let mut rest_vals: &mut [f64] = &mut values;
            let mut consumed = 0usize;
            cfg.pool().scope(|s| {
                for range in ranges {
                    let len = row_ptr[range.end] - row_ptr[range.start];
                    let (c_chunk, c_tail) = rest_cols.split_at_mut(len);
                    let (v_chunk, v_tail) = rest_vals.split_at_mut(len);
                    rest_cols = c_tail;
                    rest_vals = v_tail;
                    debug_assert_eq!(consumed, row_ptr[range.start]);
                    consumed += len;
                    let row_ptr = &row_ptr;
                    s.spawn(move || self.transpose_scatter_block(row_ptr, range, c_chunk, v_chunk));
                }
            });
        }
        CsrMatrix {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Scatters every stored entry whose column lies in `cols` into the
    /// output block covering exactly those transpose rows. `out_row_ptr`
    /// is the transpose's finished row-pointer array; `c_chunk`/`v_chunk`
    /// are the slices of its `col_idx`/`values` starting at
    /// `out_row_ptr[cols.start]`.
    fn transpose_scatter_block(
        &self,
        out_row_ptr: &[usize],
        cols: Range<usize>,
        c_chunk: &mut [u32],
        v_chunk: &mut [f64],
    ) {
        let base = out_row_ptr[cols.start];
        // The block bounds as u32 once — probes compare the compact
        // storage type directly.
        let (lo_col, hi_col) = (cols.start as u32, cols.end as u32);
        // Per-column write cursors, block-local.
        let mut next: Vec<usize> = out_row_ptr[cols.start..=cols.end]
            .iter()
            .map(|&p| p - base)
            .collect();
        for r in 0..self.n_rows {
            let row_cols = self.row_cols(r);
            // Columns are sorted within a row: binary-search the sub-range
            // falling inside this block instead of scanning the whole row.
            let lo = row_cols.partition_point(|&c| c < lo_col);
            let hi = lo + row_cols[lo..].partition_point(|&c| c < hi_col);
            let row_vals = self.row_values(r);
            for (&c, &v) in row_cols[lo..hi].iter().zip(&row_vals[lo..hi]) {
                let slot = &mut next[c as usize - cols.start];
                c_chunk[*slot] = r as u32;
                v_chunk[*slot] = v;
                *slot += 1;
            }
        }
    }

    /// `true` iff the matrix equals its transpose up to `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.n_rows != self.n_cols {
            return false;
        }
        for r in 0..self.n_rows {
            for (c, v) in self.row_iter(r) {
                if (self.get(c, r) - v).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// The weighted degree vector of Sect. 5.2: `d_s = Σ_t w(s,t)²`
    /// (the echo cancellation travels an edge back *and* forth, so each
    /// edge contributes its squared weight). For unweighted graphs this is
    /// the ordinary degree.
    pub fn squared_weight_degrees(&self) -> Vec<f64> {
        (0..self.n_rows)
            .map(|r| sum_sq4(self.row_values(r)))
            .collect()
    }

    /// Plain weighted row sums (`Σ_t w(s,t)`), accumulated in the
    /// canonical 4-lane order.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.n_rows).map(|r| sum4(self.row_values(r))).collect()
    }

    /// Returns a copy with all entries scaled by `s`.
    pub fn scale(&self, s: f64) -> CsrMatrix {
        let mut out = self.clone();
        out.values.iter_mut().for_each(|v| *v *= s);
        out
    }

    /// Returns a copy with additive edge-weight `deltas` merged in:
    /// `out[r, c] = self[r, c] + Σ δ` over every `(r, c, δ)` in the list
    /// (duplicates sum). A coordinate whose *resulting* weight is exactly
    /// `0.0` is not stored — a delta that cancels an edge removes it from
    /// the structure — while untouched explicit zeros are preserved
    /// as-is. Out-of-bounds coordinates are a recoverable
    /// [`CsrError::EntryOutOfBounds`] (deltas arrive from remote clients),
    /// and on error `self` is unchanged.
    ///
    /// This is the serving layer's graph-version step: rebuilding the CSR
    /// costs one merge pass over `nnz + |deltas|` entries instead of a
    /// full COO re-sort, and the untouched rows are byte-for-byte copies
    /// of the old ones.
    pub fn try_with_edge_deltas(
        &self,
        deltas: &[(usize, usize, f64)],
    ) -> Result<CsrMatrix, CsrError> {
        use std::collections::BTreeMap;
        for &(r, c, _) in deltas {
            if r >= self.n_rows || c >= self.n_cols {
                return Err(CsrError::EntryOutOfBounds { row: r, col: c });
            }
        }
        // Per-row sorted delta maps, duplicates summed in arrival order.
        let mut by_row: BTreeMap<usize, BTreeMap<u32, f64>> = BTreeMap::new();
        for &(r, c, d) in deltas {
            *by_row.entry(r).or_default().entry(c as u32).or_insert(0.0) += d;
        }

        let mut row_ptr = vec![0usize; self.n_rows + 1];
        let mut col_idx: Vec<u32> = Vec::with_capacity(self.nnz() + deltas.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.nnz() + deltas.len());
        for r in 0..self.n_rows {
            let old_cols = self.row_cols(r);
            let old_vals = self.row_values(r);
            match by_row.get(&r) {
                None => {
                    col_idx.extend_from_slice(old_cols);
                    values.extend_from_slice(old_vals);
                }
                Some(row_deltas) => {
                    // Sorted two-way merge of the old row and its deltas.
                    // Only *touched* coordinates go through the zero-prune;
                    // untouched entries pass through verbatim.
                    let mut i = 0;
                    for (&c, &d) in row_deltas {
                        while i < old_cols.len() && old_cols[i] < c {
                            col_idx.push(old_cols[i]);
                            values.push(old_vals[i]);
                            i += 1;
                        }
                        let merged = if i < old_cols.len() && old_cols[i] == c {
                            i += 1;
                            old_vals[i - 1] + d
                        } else {
                            d
                        };
                        if merged != 0.0 {
                            col_idx.push(c);
                            values.push(merged);
                        }
                    }
                    col_idx.extend_from_slice(&old_cols[i..]);
                    values.extend_from_slice(&old_vals[i..]);
                }
            }
            row_ptr[r + 1] = col_idx.len();
        }
        Ok(CsrMatrix {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Returns a copy with exact-zero entries removed.
    pub fn prune_zeros(&self) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.n_rows + 1];
        let mut col_idx: Vec<u32> = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        for r in 0..self.n_rows {
            for (&c, &v) in self.row_cols(r).iter().zip(self.row_values(r)) {
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr[r + 1] = col_idx.len();
        }
        CsrMatrix {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Densifies (tests / tiny systems only).
    pub fn to_dense(&self) -> Mat {
        let mut m = Mat::zeros(self.n_rows, self.n_cols);
        for r in 0..self.n_rows {
            for (c, v) in self.row_iter(r) {
                m[(r, c)] = v;
            }
        }
        m
    }

    /// Maximum absolute row sum — the induced ∞-norm, used by Lemma 9 for
    /// the adjacency matrix without densifying it.
    pub fn induced_inf_norm(&self) -> f64 {
        (0..self.n_rows)
            .map(|r| sum_abs4(self.row_values(r)))
            .fold(0.0, f64::max)
    }

    /// Maximum absolute column sum — the induced 1-norm.
    pub fn induced_1_norm(&self) -> f64 {
        let mut col_sums = vec![0.0f64; self.n_cols];
        for (idx, &c) in self.col_idx.iter().enumerate() {
            col_sums[c as usize] += self.values[idx].abs();
        }
        col_sums.into_iter().fold(0.0, f64::max)
    }

    /// Frobenius norm (canonical 4-lane sum over the stored values).
    pub fn frobenius_norm(&self) -> f64 {
        sum_sq4(&self.values).sqrt()
    }

    /// Spectral radius via power iteration (the matrix should be symmetric,
    /// which holds for undirected adjacency matrices).
    pub fn spectral_radius(&self) -> f64 {
        assert_eq!(
            self.n_rows, self.n_cols,
            "spectral radius of a square matrix only"
        );
        lsbp_linalg::power_iteration(
            self.n_rows,
            |x, out| self.spmv_into(x, out),
            lsbp_linalg::PowerIterationOptions {
                max_iter: 2000,
                ..Default::default()
            },
        )
    }
}

/// Widest dense-row width (`k·q` columns) whose fused-kernel scratch
/// fits on the stack: per-task intermediate buffers below this use fixed
/// arrays, so solver iterations allocate nothing (the design rule
/// `LinBpScratch` established). Wider stacks fall back to one `Vec` per
/// row-block task.
pub(crate) const SCRATCH_WIDTH: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn small() -> CsrMatrix {
        // [[0, 2, 0],
        //  [2, 0, 3],
        //  [0, 3, 1]]
        let mut coo = CooMatrix::new(3, 3);
        coo.push_symmetric(0, 1, 2.0);
        coo.push_symmetric(1, 2, 3.0);
        coo.push(2, 2, 1.0);
        coo.to_csr()
    }

    #[test]
    fn get_and_row_access() {
        let m = small();
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 2.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.row_cols(1), &[0, 2]);
        assert_eq!(m.row_values(2), &[3.0, 1.0]);
        assert_eq!(m.row_nnz(1), 2);
        assert_eq!(m.nnz(), 5);
    }

    #[test]
    fn spmv_known() {
        let m = small();
        let y = m.spmv(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![2.0, 5.0, 4.0]);
    }

    #[test]
    fn spmm_matches_dense() {
        let m = small();
        let b = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, -1.0]]);
        let sparse_prod = m.spmm(&b);
        let dense_prod = m.to_dense().matmul(&b);
        assert!(sparse_prod.max_abs_diff(&dense_prod) < 1e-14);
    }

    /// The width-specialized SpMM row kernels (k = 2/3/4) are bitwise
    /// identical to the generic slice kernel they retired from the hot
    /// path — same per-element CSR-entry accumulation order, registers
    /// instead of memory.
    #[test]
    fn spmm_width_specialization_bitwise() {
        let mut coo = CooMatrix::new(9, 9);
        for i in 0..8usize {
            coo.push_symmetric(i, i + 1, 0.3 * i as f64 + 0.1);
            coo.push_symmetric(i / 2, i, 1.7 - 0.2 * i as f64);
        }
        let m = coo.to_csr();
        for k in [2usize, 3, 4] {
            let b = Mat::from_fn(9, k, |r, c| ((r * k + c) % 13) as f64 * 0.05 - 0.3);
            let mut spec = vec![f64::NAN; 9 * k];
            let mut gen = vec![f64::NAN; 9 * k];
            m.spmm_rows(&b, 0..9, &mut spec);
            m.spmm_rows_generic(&b, 0..9, &mut gen);
            for (a, b) in spec.iter().zip(&gen) {
                assert_eq!(a.to_bits(), b.to_bits(), "k={k}");
            }
        }
    }

    #[test]
    fn transpose_of_symmetric_is_self() {
        let m = small();
        assert!(m.is_symmetric(0.0));
        assert_eq!(m.transpose(), m);
    }

    #[test]
    fn transpose_rectangular() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 2, 5.0);
        coo.push(1, 0, 1.0);
        let m = coo.to_csr();
        let t = m.transpose();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.get(2, 0), 5.0);
        assert_eq!(t.get(0, 1), 1.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn squared_weight_degrees_weighted() {
        let m = small();
        // Row 0: 2² = 4; row 1: 2²+3² = 13; row 2: 3²+1² = 10.
        assert_eq!(m.squared_weight_degrees(), vec![4.0, 13.0, 10.0]);
        assert_eq!(m.row_sums(), vec![2.0, 5.0, 4.0]);
    }

    #[test]
    fn norms_match_dense() {
        let m = small();
        let d = m.to_dense();
        assert!((m.induced_1_norm() - lsbp_linalg::induced_1_norm(&d)).abs() < 1e-14);
        assert!((m.induced_inf_norm() - lsbp_linalg::induced_inf_norm(&d)).abs() < 1e-14);
        assert!((m.frobenius_norm() - lsbp_linalg::frobenius_norm(&d)).abs() < 1e-14);
    }

    #[test]
    fn spectral_radius_path_graph() {
        // P3 path: eigenvalues ±√2, 0.
        let mut coo = CooMatrix::new(3, 3);
        coo.push_symmetric(0, 1, 1.0);
        coo.push_symmetric(1, 2, 1.0);
        let m = coo.to_csr();
        assert!((m.spectral_radius() - 2.0f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn identity_and_empty() {
        let i = CsrMatrix::identity(4);
        assert_eq!(i.nnz(), 4);
        assert_eq!(i.spmv(&[1.0, 2.0, 3.0, 4.0]), vec![1.0, 2.0, 3.0, 4.0]);
        let e = CsrMatrix::empty(2, 5);
        assert_eq!(e.nnz(), 0);
        assert_eq!(e.spmv(&[1.0; 5]), vec![0.0, 0.0]);
    }

    #[test]
    fn scale_and_prune() {
        let m = small().scale(0.0);
        assert_eq!(m.nnz(), 5); // explicit zeros kept
        let p = m.prune_zeros();
        assert_eq!(p.nnz(), 0);
        let m2 = small().scale(2.0);
        assert_eq!(m2.get(1, 2), 6.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_raw_parts_rejects_unsorted() {
        let _ = CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_raw_parts_rejects_bad_column() {
        let _ = CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![2], vec![1.0]);
    }

    #[test]
    fn entry_index_lookup() {
        let m = small();
        // values order: (0,1)=2, (1,0)=2, (1,2)=3, (2,1)=3, (2,2)=1
        assert_eq!(m.entry_index(1, 2), Some(2));
        assert_eq!(m.entry_index(2, 2), Some(4));
        assert!(m.entry_index(0, 0).is_none());
    }

    /// Lookups beyond the u32 index limit are structurally absent, not a
    /// panic or a truncated (wrapped) probe.
    #[test]
    fn lookups_past_u32_limit_are_absent() {
        let m = small();
        assert_eq!(m.get(0, usize::MAX), 0.0);
        assert!(m.entry_index(0, usize::MAX).is_none());
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    fn try_from_raw_parts_rejects_oversized_dimensions() {
        let too_big = crate::csr::MAX_DIM + 1;
        // Zero stored entries: only the dimension check can fire, so the
        // arrays stay tiny.
        let err =
            CsrMatrix::try_from_raw_parts(1, too_big, vec![0, 0], vec![], vec![]).unwrap_err();
        assert_eq!(
            err,
            CsrError::DimensionOverflow {
                dim: "cols",
                size: too_big
            }
        );
        // The dimension check fires before any structural validation, so
        // the (invalid-length) arrays never need to be materialized.
        let err = CsrMatrix::try_from_raw_parts(too_big, 1, vec![0], vec![], vec![]).unwrap_err();
        assert!(matches!(
            err,
            CsrError::DimensionOverflow { dim: "rows", .. }
        ));
        assert!(err.to_string().contains("u32 index limit"));
    }

    #[test]
    fn try_from_raw_parts_accepts_valid_input() {
        let m =
            CsrMatrix::try_from_raw_parts(2, 3, vec![0, 1, 2], vec![2, 0], vec![5.0, 1.0]).unwrap();
        assert_eq!(m.get(0, 2), 5.0);
        assert_eq!(m.get(1, 0), 1.0);
    }

    #[test]
    fn edge_deltas_merge_sum_and_prune() {
        // Row 0: [ . 2 . ], row 1: [ 1 . 3 ], row 2 empty.
        let m =
            CsrMatrix::from_raw_parts(3, 3, vec![0, 1, 3, 3], vec![1, 0, 2], vec![2.0, 1.0, 3.0]);
        let out = m
            .try_with_edge_deltas(&[
                (0, 1, 0.5),  // adjust an existing entry
                (0, 0, 4.0),  // insert before it
                (1, 2, -3.0), // cancel exactly → pruned
                (2, 1, 0.25), // insert into an empty row
                (2, 1, 0.25), // duplicate delta sums
            ])
            .unwrap();
        assert_eq!(out.get(0, 0), 4.0);
        assert_eq!(out.get(0, 1), 2.5);
        assert_eq!(out.get(1, 0), 1.0);
        assert_eq!(out.entry_index(1, 2), None); // cancelled edge removed
        assert_eq!(out.get(2, 1), 0.5);
        assert_eq!(out.nnz(), 4);
        // The original is untouched.
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn edge_deltas_reject_out_of_bounds() {
        let m = CsrMatrix::identity(2);
        assert_eq!(
            m.try_with_edge_deltas(&[(0, 5, 1.0)]).unwrap_err(),
            CsrError::EntryOutOfBounds { row: 0, col: 5 }
        );
        assert_eq!(
            m.try_with_edge_deltas(&[(9, 0, 1.0)]).unwrap_err(),
            CsrError::EntryOutOfBounds { row: 9, col: 0 }
        );
    }

    #[test]
    fn edge_deltas_untouched_rows_identical() {
        let m = CsrMatrix::from_raw_parts(
            3,
            3,
            vec![0, 2, 3, 4],
            vec![0, 2, 1, 0],
            vec![
                1.0, 0.0, // note: explicit zero survives in untouched rows
                2.0, 3.0,
            ],
        );
        let out = m.try_with_edge_deltas(&[(1, 1, 1.0)]).unwrap();
        assert_eq!(out.row_cols(0), m.row_cols(0));
        assert_eq!(out.row_values(0), m.row_values(0));
        assert_eq!(out.get(1, 1), 3.0);
        assert_eq!(out.row_cols(2), m.row_cols(2));
    }
}

//! Compressed sparse row matrix.
//!
//! The single data structure behind every large-graph computation in this
//! workspace: adjacency matrices are stored once in CSR and shared by BP
//! (neighbor iteration), LinBP (SpMM), SBP (BFS layering) and the spectral
//! convergence criteria (SpMV inside power iteration).

use lsbp_linalg::Mat;

/// A sparse `n_rows × n_cols` matrix in compressed sparse row format.
///
/// Invariants (maintained by all constructors):
/// * `row_ptr.len() == n_rows + 1`, `row_ptr[0] == 0`, non-decreasing;
/// * column indices within each row are strictly increasing;
/// * `col_idx.len() == values.len() == row_ptr[n_rows]`.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the CSR invariants do not hold (sizes, monotone `row_ptr`,
    /// strictly increasing in-row columns, in-bounds column indices).
    pub fn from_raw_parts(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), n_rows + 1, "row_ptr length");
        assert_eq!(row_ptr[0], 0, "row_ptr must start at 0");
        assert_eq!(
            *row_ptr.last().unwrap(),
            col_idx.len(),
            "row_ptr end / col_idx length"
        );
        assert_eq!(col_idx.len(), values.len(), "col_idx / values length");
        for r in 0..n_rows {
            assert!(
                row_ptr[r] <= row_ptr[r + 1],
                "row_ptr must be non-decreasing"
            );
            let cols = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in cols.windows(2) {
                assert!(
                    w[0] < w[1],
                    "columns within a row must be strictly increasing"
                );
            }
            if let Some(&last) = cols.last() {
                assert!(last < n_cols, "column index out of bounds");
            }
        }
        Self {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// An `n × n` matrix with no stored entries.
    pub fn empty(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            row_ptr: vec![0; n_rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        Self {
            n_rows: n,
            n_cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Column indices of row `r` (sorted ascending).
    #[inline]
    pub fn row_cols(&self, r: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Values of row `r`, parallel to [`CsrMatrix::row_cols`].
    #[inline]
    pub fn row_values(&self, r: usize) -> &[f64] {
        &self.values[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Iterates `(col, value)` pairs of row `r`.
    #[inline]
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.row_cols(r)
            .iter()
            .copied()
            .zip(self.row_values(r).iter().copied())
    }

    /// Number of stored entries in row `r` (the node degree for adjacency
    /// matrices without explicit zeros).
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Value at `(r, c)`, or 0.0 if not stored. `O(log row_nnz)`.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let cols = self.row_cols(r);
        match cols.binary_search(&c) {
            Ok(pos) => self.row_values(r)[pos],
            Err(_) => 0.0,
        }
    }

    /// The index into `values`/`col_idx` of entry `(r, c)`, if stored.
    pub fn entry_index(&self, r: usize, c: usize) -> Option<usize> {
        let start = self.row_ptr[r];
        let cols = self.row_cols(r);
        cols.binary_search(&c).ok().map(|pos| start + pos)
    }

    /// Sparse matrix × dense vector: `y = A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != n_cols`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_rows];
        self.spmv_into(x, &mut y);
        y
    }

    /// Sparse matrix × dense vector into a caller-provided buffer.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "spmv dimension mismatch");
        assert_eq!(y.len(), self.n_rows, "spmv output dimension mismatch");
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, v) in self.row_iter(r) {
                acc += v * x[c];
            }
            *out = acc;
        }
    }

    /// Sparse × dense matrix product: `A · B` where `B` is `n_cols × k`.
    /// This is the LinBP workhorse (`A · B̂`), `O(nnz · k)`.
    pub fn spmm(&self, b: &Mat) -> Mat {
        let mut out = Mat::zeros(self.n_rows, b.cols());
        self.spmm_into(b, &mut out);
        out
    }

    /// Sparse × dense into a caller-provided output (overwrites `out`).
    pub fn spmm_into(&self, b: &Mat, out: &mut Mat) {
        assert_eq!(b.rows(), self.n_cols, "spmm dimension mismatch");
        assert_eq!(out.rows(), self.n_rows, "spmm output rows");
        assert_eq!(out.cols(), b.cols(), "spmm output cols");
        out.fill_zero();
        for r in 0..self.n_rows {
            // Accumulate row r of the output: Σ_c A(r,c) · B(c,·).
            let start = self.row_ptr[r];
            let end = self.row_ptr[r + 1];
            for idx in start..end {
                let c = self.col_idx[idx];
                let v = self.values[idx];
                let b_row = b.row(c);
                let o_row = out.row_mut(r);
                for (o, &bv) in o_row.iter_mut().zip(b_row) {
                    *o += v * bv;
                }
            }
        }
    }

    /// Transpose (always returns a valid CSR with sorted rows).
    pub fn transpose(&self) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.n_cols + 1];
        for &c in &self.col_idx {
            row_ptr[c + 1] += 1;
        }
        for i in 0..self.n_cols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = row_ptr.clone();
        for r in 0..self.n_rows {
            for (c, v) in self.row_iter(r) {
                let pos = next[c];
                col_idx[pos] = r;
                values[pos] = v;
                next[c] += 1;
            }
        }
        CsrMatrix {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// `true` iff the matrix equals its transpose up to `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.n_rows != self.n_cols {
            return false;
        }
        for r in 0..self.n_rows {
            for (c, v) in self.row_iter(r) {
                if (self.get(c, r) - v).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// The weighted degree vector of Sect. 5.2: `d_s = Σ_t w(s,t)²`
    /// (the echo cancellation travels an edge back *and* forth, so each
    /// edge contributes its squared weight). For unweighted graphs this is
    /// the ordinary degree.
    pub fn squared_weight_degrees(&self) -> Vec<f64> {
        (0..self.n_rows)
            .map(|r| self.row_values(r).iter().map(|v| v * v).sum())
            .collect()
    }

    /// Plain weighted row sums (`Σ_t w(s,t)`).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.n_rows)
            .map(|r| self.row_values(r).iter().sum())
            .collect()
    }

    /// Returns a copy with all entries scaled by `s`.
    pub fn scale(&self, s: f64) -> CsrMatrix {
        let mut out = self.clone();
        out.values.iter_mut().for_each(|v| *v *= s);
        out
    }

    /// Returns a copy with exact-zero entries removed.
    pub fn prune_zeros(&self) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.n_rows + 1];
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        for r in 0..self.n_rows {
            for (c, v) in self.row_iter(r) {
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr[r + 1] = col_idx.len();
        }
        CsrMatrix {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Densifies (tests / tiny systems only).
    pub fn to_dense(&self) -> Mat {
        let mut m = Mat::zeros(self.n_rows, self.n_cols);
        for r in 0..self.n_rows {
            for (c, v) in self.row_iter(r) {
                m[(r, c)] = v;
            }
        }
        m
    }

    /// Maximum absolute row sum — the induced ∞-norm, used by Lemma 9 for
    /// the adjacency matrix without densifying it.
    pub fn induced_inf_norm(&self) -> f64 {
        (0..self.n_rows)
            .map(|r| self.row_values(r).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Maximum absolute column sum — the induced 1-norm.
    pub fn induced_1_norm(&self) -> f64 {
        let mut col_sums = vec![0.0f64; self.n_cols];
        for (idx, &c) in self.col_idx.iter().enumerate() {
            col_sums[c] += self.values[idx].abs();
        }
        col_sums.into_iter().fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Spectral radius via power iteration (the matrix should be symmetric,
    /// which holds for undirected adjacency matrices).
    pub fn spectral_radius(&self) -> f64 {
        assert_eq!(
            self.n_rows, self.n_cols,
            "spectral radius of a square matrix only"
        );
        lsbp_linalg::power_iteration(
            self.n_rows,
            |x, out| self.spmv_into(x, out),
            lsbp_linalg::PowerIterationOptions {
                max_iter: 2000,
                ..Default::default()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn small() -> CsrMatrix {
        // [[0, 2, 0],
        //  [2, 0, 3],
        //  [0, 3, 1]]
        let mut coo = CooMatrix::new(3, 3);
        coo.push_symmetric(0, 1, 2.0);
        coo.push_symmetric(1, 2, 3.0);
        coo.push(2, 2, 1.0);
        coo.to_csr()
    }

    #[test]
    fn get_and_row_access() {
        let m = small();
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 2.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.row_cols(1), &[0, 2]);
        assert_eq!(m.row_values(2), &[3.0, 1.0]);
        assert_eq!(m.row_nnz(1), 2);
        assert_eq!(m.nnz(), 5);
    }

    #[test]
    fn spmv_known() {
        let m = small();
        let y = m.spmv(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![2.0, 5.0, 4.0]);
    }

    #[test]
    fn spmm_matches_dense() {
        let m = small();
        let b = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, -1.0]]);
        let sparse_prod = m.spmm(&b);
        let dense_prod = m.to_dense().matmul(&b);
        assert!(sparse_prod.max_abs_diff(&dense_prod) < 1e-14);
    }

    #[test]
    fn transpose_of_symmetric_is_self() {
        let m = small();
        assert!(m.is_symmetric(0.0));
        assert_eq!(m.transpose(), m);
    }

    #[test]
    fn transpose_rectangular() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 2, 5.0);
        coo.push(1, 0, 1.0);
        let m = coo.to_csr();
        let t = m.transpose();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.get(2, 0), 5.0);
        assert_eq!(t.get(0, 1), 1.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn squared_weight_degrees_weighted() {
        let m = small();
        // Row 0: 2² = 4; row 1: 2²+3² = 13; row 2: 3²+1² = 10.
        assert_eq!(m.squared_weight_degrees(), vec![4.0, 13.0, 10.0]);
        assert_eq!(m.row_sums(), vec![2.0, 5.0, 4.0]);
    }

    #[test]
    fn norms_match_dense() {
        let m = small();
        let d = m.to_dense();
        assert!((m.induced_1_norm() - lsbp_linalg::induced_1_norm(&d)).abs() < 1e-14);
        assert!((m.induced_inf_norm() - lsbp_linalg::induced_inf_norm(&d)).abs() < 1e-14);
        assert!((m.frobenius_norm() - lsbp_linalg::frobenius_norm(&d)).abs() < 1e-14);
    }

    #[test]
    fn spectral_radius_path_graph() {
        // P3 path: eigenvalues ±√2, 0.
        let mut coo = CooMatrix::new(3, 3);
        coo.push_symmetric(0, 1, 1.0);
        coo.push_symmetric(1, 2, 1.0);
        let m = coo.to_csr();
        assert!((m.spectral_radius() - 2.0f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn identity_and_empty() {
        let i = CsrMatrix::identity(4);
        assert_eq!(i.nnz(), 4);
        assert_eq!(i.spmv(&[1.0, 2.0, 3.0, 4.0]), vec![1.0, 2.0, 3.0, 4.0]);
        let e = CsrMatrix::empty(2, 5);
        assert_eq!(e.nnz(), 0);
        assert_eq!(e.spmv(&[1.0; 5]), vec![0.0, 0.0]);
    }

    #[test]
    fn scale_and_prune() {
        let m = small().scale(0.0);
        assert_eq!(m.nnz(), 5); // explicit zeros kept
        let p = m.prune_zeros();
        assert_eq!(p.nnz(), 0);
        let m2 = small().scale(2.0);
        assert_eq!(m2.get(1, 2), 6.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_raw_parts_rejects_unsorted() {
        let _ = CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_raw_parts_rejects_bad_column() {
        let _ = CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![2], vec![1.0]);
    }

    #[test]
    fn entry_index_lookup() {
        let m = small();
        // values order: (0,1)=2, (1,0)=2, (1,2)=3, (2,1)=3, (2,2)=1
        assert_eq!(m.entry_index(1, 2), Some(2));
        assert_eq!(m.entry_index(2, 2), Some(4));
        assert!(m.entry_index(0, 0).is_none());
    }
}

//! Compressed sparse row matrix.
//!
//! The single data structure behind every large-graph computation in this
//! workspace: adjacency matrices are stored once in CSR and shared by BP
//! (neighbor iteration), LinBP (SpMM), SBP (BFS layering) and the spectral
//! convergence criteria (SpMV inside power iteration).

use lsbp_linalg::{weight_balanced_ranges, Mat, ParallelismConfig};
use std::ops::Range;

/// A sparse `n_rows × n_cols` matrix in compressed sparse row format.
///
/// Invariants (maintained by all constructors):
/// * `row_ptr.len() == n_rows + 1`, `row_ptr[0] == 0`, non-decreasing;
/// * column indices within each row are strictly increasing;
/// * `col_idx.len() == values.len() == row_ptr[n_rows]`.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the CSR invariants do not hold (sizes, monotone `row_ptr`,
    /// strictly increasing in-row columns, in-bounds column indices).
    pub fn from_raw_parts(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), n_rows + 1, "row_ptr length");
        assert_eq!(row_ptr[0], 0, "row_ptr must start at 0");
        assert_eq!(
            *row_ptr.last().unwrap(),
            col_idx.len(),
            "row_ptr end / col_idx length"
        );
        assert_eq!(col_idx.len(), values.len(), "col_idx / values length");
        for r in 0..n_rows {
            assert!(
                row_ptr[r] <= row_ptr[r + 1],
                "row_ptr must be non-decreasing"
            );
            let cols = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in cols.windows(2) {
                assert!(
                    w[0] < w[1],
                    "columns within a row must be strictly increasing"
                );
            }
            if let Some(&last) = cols.last() {
                assert!(last < n_cols, "column index out of bounds");
            }
        }
        Self {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// An `n × n` matrix with no stored entries.
    pub fn empty(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            row_ptr: vec![0; n_rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        Self {
            n_rows: n,
            n_cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Column indices of row `r` (sorted ascending).
    #[inline]
    pub fn row_cols(&self, r: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Values of row `r`, parallel to [`CsrMatrix::row_cols`].
    #[inline]
    pub fn row_values(&self, r: usize) -> &[f64] {
        &self.values[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Iterates `(col, value)` pairs of row `r`.
    #[inline]
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.row_cols(r)
            .iter()
            .copied()
            .zip(self.row_values(r).iter().copied())
    }

    /// Number of stored entries in row `r` (the node degree for adjacency
    /// matrices without explicit zeros).
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// The CSR row-pointer array (`n_rows + 1` entries, `[0] == 0`,
    /// `[n_rows] == nnz`). Doubles as the cumulative-weight array for
    /// nnz-balanced row partitioning (see
    /// [`lsbp_linalg::weight_balanced_ranges`]).
    #[inline]
    pub fn row_offsets(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Value at `(r, c)`, or 0.0 if not stored. `O(log row_nnz)`.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let cols = self.row_cols(r);
        match cols.binary_search(&c) {
            Ok(pos) => self.row_values(r)[pos],
            Err(_) => 0.0,
        }
    }

    /// The index into `values`/`col_idx` of entry `(r, c)`, if stored.
    pub fn entry_index(&self, r: usize, c: usize) -> Option<usize> {
        let start = self.row_ptr[r];
        let cols = self.row_cols(r);
        cols.binary_search(&c).ok().map(|pos| start + pos)
    }

    /// Sparse matrix × dense vector: `y = A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != n_cols`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_rows];
        self.spmv_into(x, &mut y);
        y
    }

    /// Sparse matrix × dense vector into a caller-provided buffer,
    /// parallelized according to the process default
    /// ([`ParallelismConfig::default`]).
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        self.spmv_into_with(x, y, &ParallelismConfig::default());
    }

    /// [`CsrMatrix::spmv_into`] with an explicit execution configuration.
    ///
    /// Rows are partitioned into nnz-balanced contiguous blocks computed
    /// by independent tasks writing disjoint output slices; each row's
    /// accumulation order is unchanged, so the result is bitwise identical
    /// for any thread count.
    pub fn spmv_into_with(&self, x: &[f64], y: &mut [f64], cfg: &ParallelismConfig) {
        assert_eq!(x.len(), self.n_cols, "spmv dimension mismatch");
        assert_eq!(y.len(), self.n_rows, "spmv output dimension mismatch");
        let parts = cfg.partitions(self.nnz() + self.n_rows);
        if parts <= 1 {
            self.spmv_rows(x, 0..self.n_rows, y);
            return;
        }
        let ranges = weight_balanced_ranges(&self.row_ptr, parts);
        let mut rest: &mut [f64] = y;
        cfg.pool().scope(|s| {
            for range in ranges {
                let (chunk, tail) = rest.split_at_mut(range.end - range.start);
                rest = tail;
                s.spawn(move || self.spmv_rows(x, range, chunk));
            }
        });
    }

    /// Serial SpMV kernel over the row block `rows`, writing into `block`
    /// (`block[i]` = output row `rows.start + i`). Shared verbatim by the
    /// serial path and every parallel task.
    fn spmv_rows(&self, x: &[f64], rows: Range<usize>, block: &mut [f64]) {
        for (r, out) in rows.zip(block.iter_mut()) {
            let mut acc = 0.0;
            for (&c, &v) in self.row_cols(r).iter().zip(self.row_values(r)) {
                acc += v * x[c];
            }
            *out = acc;
        }
    }

    /// Sparse × dense matrix product: `A · B` where `B` is `n_cols × k`.
    /// This is the LinBP workhorse (`A · B̂`), `O(nnz · k)`.
    pub fn spmm(&self, b: &Mat) -> Mat {
        let mut out = Mat::zeros(self.n_rows, b.cols());
        self.spmm_into(b, &mut out);
        out
    }

    /// [`CsrMatrix::spmm`] with an explicit execution configuration.
    pub fn spmm_with(&self, b: &Mat, cfg: &ParallelismConfig) -> Mat {
        let mut out = Mat::zeros(self.n_rows, b.cols());
        self.spmm_into_with(b, &mut out, cfg);
        out
    }

    /// Sparse × dense into a caller-provided output (overwrites `out`),
    /// parallelized according to the process default
    /// ([`ParallelismConfig::default`]).
    pub fn spmm_into(&self, b: &Mat, out: &mut Mat) {
        self.spmm_into_with(b, out, &ParallelismConfig::default());
    }

    /// [`CsrMatrix::spmm_into`] with an explicit execution configuration.
    ///
    /// Rows are partitioned into nnz-balanced contiguous blocks computed
    /// by independent tasks writing disjoint output slices; each output
    /// row's accumulation order is unchanged, so the result is bitwise
    /// identical for any thread count.
    pub fn spmm_into_with(&self, b: &Mat, out: &mut Mat, cfg: &ParallelismConfig) {
        assert_eq!(b.rows(), self.n_cols, "spmm dimension mismatch");
        assert_eq!(out.rows(), self.n_rows, "spmm output rows");
        assert_eq!(out.cols(), b.cols(), "spmm output cols");
        let parts = cfg.partitions((self.nnz() + self.n_rows) * b.cols());
        if parts <= 1 {
            self.spmm_rows(b, 0..self.n_rows, out.as_mut_slice());
            return;
        }
        let ranges = weight_balanced_ranges(&self.row_ptr, parts);
        let row_len = b.cols();
        let mut rest: &mut [f64] = out.as_mut_slice();
        cfg.pool().scope(|s| {
            for range in ranges {
                let (chunk, tail) = rest.split_at_mut((range.end - range.start) * row_len);
                rest = tail;
                s.spawn(move || self.spmm_rows(b, range, chunk));
            }
        });
    }

    /// Serial SpMM kernel over the row block `rows`, writing into `block`
    /// (the flat row-major storage of exactly those output rows). The
    /// output row borrow and the `col_idx`/`values` slices are hoisted out
    /// of the per-entry loop. Shared verbatim by the serial path and every
    /// parallel task.
    fn spmm_rows(&self, b: &Mat, rows: Range<usize>, block: &mut [f64]) {
        let row_len = b.cols();
        block.iter_mut().for_each(|x| *x = 0.0);
        for r in rows.clone() {
            // Accumulate row r of the output: Σ_c A(r,c) · B(c,·).
            let o_row = &mut block[(r - rows.start) * row_len..(r - rows.start + 1) * row_len];
            for (&c, &v) in self.row_cols(r).iter().zip(self.row_values(r)) {
                let b_row = b.row(c);
                for (o, &bv) in o_row.iter_mut().zip(b_row) {
                    *o += v * bv;
                }
            }
        }
    }

    /// Transpose (always returns a valid CSR with sorted rows),
    /// parallelized according to the process default
    /// ([`ParallelismConfig::default`]).
    pub fn transpose(&self) -> CsrMatrix {
        self.transpose_with(&ParallelismConfig::default())
    }

    /// [`CsrMatrix::transpose`] with an explicit execution configuration.
    ///
    /// The parallel path partitions the *output* rows (input columns) into
    /// nnz-balanced blocks after a serial counting pass; each task scatters
    /// only the entries landing in its block (located by binary search in
    /// each input row's sorted column slice), so writes are disjoint and
    /// the within-row order (ascending input row) matches the serial
    /// scatter exactly — the result is identical for any thread count.
    pub fn transpose_with(&self, cfg: &ParallelismConfig) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.n_cols + 1];
        for &c in &self.col_idx {
            row_ptr[c + 1] += 1;
        }
        for i in 0..self.n_cols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut parts = cfg.partitions(self.nnz() + self.n_rows + self.n_cols);
        // The parallel scatter re-scans every input row per task (two
        // binary searches each), an O(parts · n_rows) overhead the serial
        // scatter does not pay. Only split when each task's share of
        // scattered writes clearly dominates its scan: probes are a few ns
        // against tens of ns per scattered write, so require ≥ n_rows/4
        // stored entries per task; otherwise shrink the partition count.
        if let Some(write_bound) = (4 * self.nnz()).checked_div(self.n_rows) {
            parts = parts.min(write_bound.max(1));
        }
        if parts <= 1 {
            let mut next = row_ptr.clone();
            for r in 0..self.n_rows {
                for (c, v) in self.row_iter(r) {
                    let pos = next[c];
                    col_idx[pos] = r;
                    values[pos] = v;
                    next[c] += 1;
                }
            }
        } else {
            let ranges = weight_balanced_ranges(&row_ptr, parts);
            let mut rest_cols: &mut [usize] = &mut col_idx;
            let mut rest_vals: &mut [f64] = &mut values;
            let mut consumed = 0usize;
            cfg.pool().scope(|s| {
                for range in ranges {
                    let len = row_ptr[range.end] - row_ptr[range.start];
                    let (c_chunk, c_tail) = rest_cols.split_at_mut(len);
                    let (v_chunk, v_tail) = rest_vals.split_at_mut(len);
                    rest_cols = c_tail;
                    rest_vals = v_tail;
                    debug_assert_eq!(consumed, row_ptr[range.start]);
                    consumed += len;
                    let row_ptr = &row_ptr;
                    s.spawn(move || self.transpose_scatter_block(row_ptr, range, c_chunk, v_chunk));
                }
            });
        }
        CsrMatrix {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Scatters every stored entry whose column lies in `cols` into the
    /// output block covering exactly those transpose rows. `out_row_ptr`
    /// is the transpose's finished row-pointer array; `c_chunk`/`v_chunk`
    /// are the slices of its `col_idx`/`values` starting at
    /// `out_row_ptr[cols.start]`.
    fn transpose_scatter_block(
        &self,
        out_row_ptr: &[usize],
        cols: Range<usize>,
        c_chunk: &mut [usize],
        v_chunk: &mut [f64],
    ) {
        let base = out_row_ptr[cols.start];
        // Per-column write cursors, block-local.
        let mut next: Vec<usize> = out_row_ptr[cols.start..=cols.end]
            .iter()
            .map(|&p| p - base)
            .collect();
        for r in 0..self.n_rows {
            let row_cols = self.row_cols(r);
            // Columns are sorted within a row: binary-search the sub-range
            // falling inside this block instead of scanning the whole row.
            let lo = row_cols.partition_point(|&c| c < cols.start);
            let hi = lo + row_cols[lo..].partition_point(|&c| c < cols.end);
            let row_vals = self.row_values(r);
            for (&c, &v) in row_cols[lo..hi].iter().zip(&row_vals[lo..hi]) {
                let slot = &mut next[c - cols.start];
                c_chunk[*slot] = r;
                v_chunk[*slot] = v;
                *slot += 1;
            }
        }
    }

    /// `true` iff the matrix equals its transpose up to `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.n_rows != self.n_cols {
            return false;
        }
        for r in 0..self.n_rows {
            for (c, v) in self.row_iter(r) {
                if (self.get(c, r) - v).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// The weighted degree vector of Sect. 5.2: `d_s = Σ_t w(s,t)²`
    /// (the echo cancellation travels an edge back *and* forth, so each
    /// edge contributes its squared weight). For unweighted graphs this is
    /// the ordinary degree.
    pub fn squared_weight_degrees(&self) -> Vec<f64> {
        (0..self.n_rows)
            .map(|r| self.row_values(r).iter().map(|v| v * v).sum())
            .collect()
    }

    /// Plain weighted row sums (`Σ_t w(s,t)`).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.n_rows)
            .map(|r| self.row_values(r).iter().sum())
            .collect()
    }

    /// Returns a copy with all entries scaled by `s`.
    pub fn scale(&self, s: f64) -> CsrMatrix {
        let mut out = self.clone();
        out.values.iter_mut().for_each(|v| *v *= s);
        out
    }

    /// Returns a copy with exact-zero entries removed.
    pub fn prune_zeros(&self) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.n_rows + 1];
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        for r in 0..self.n_rows {
            for (c, v) in self.row_iter(r) {
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr[r + 1] = col_idx.len();
        }
        CsrMatrix {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Densifies (tests / tiny systems only).
    pub fn to_dense(&self) -> Mat {
        let mut m = Mat::zeros(self.n_rows, self.n_cols);
        for r in 0..self.n_rows {
            for (c, v) in self.row_iter(r) {
                m[(r, c)] = v;
            }
        }
        m
    }

    /// Maximum absolute row sum — the induced ∞-norm, used by Lemma 9 for
    /// the adjacency matrix without densifying it.
    pub fn induced_inf_norm(&self) -> f64 {
        (0..self.n_rows)
            .map(|r| self.row_values(r).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Maximum absolute column sum — the induced 1-norm.
    pub fn induced_1_norm(&self) -> f64 {
        let mut col_sums = vec![0.0f64; self.n_cols];
        for (idx, &c) in self.col_idx.iter().enumerate() {
            col_sums[c] += self.values[idx].abs();
        }
        col_sums.into_iter().fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Spectral radius via power iteration (the matrix should be symmetric,
    /// which holds for undirected adjacency matrices).
    pub fn spectral_radius(&self) -> f64 {
        assert_eq!(
            self.n_rows, self.n_cols,
            "spectral radius of a square matrix only"
        );
        lsbp_linalg::power_iteration(
            self.n_rows,
            |x, out| self.spmv_into(x, out),
            lsbp_linalg::PowerIterationOptions {
                max_iter: 2000,
                ..Default::default()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn small() -> CsrMatrix {
        // [[0, 2, 0],
        //  [2, 0, 3],
        //  [0, 3, 1]]
        let mut coo = CooMatrix::new(3, 3);
        coo.push_symmetric(0, 1, 2.0);
        coo.push_symmetric(1, 2, 3.0);
        coo.push(2, 2, 1.0);
        coo.to_csr()
    }

    #[test]
    fn get_and_row_access() {
        let m = small();
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 2.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.row_cols(1), &[0, 2]);
        assert_eq!(m.row_values(2), &[3.0, 1.0]);
        assert_eq!(m.row_nnz(1), 2);
        assert_eq!(m.nnz(), 5);
    }

    #[test]
    fn spmv_known() {
        let m = small();
        let y = m.spmv(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![2.0, 5.0, 4.0]);
    }

    #[test]
    fn spmm_matches_dense() {
        let m = small();
        let b = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, -1.0]]);
        let sparse_prod = m.spmm(&b);
        let dense_prod = m.to_dense().matmul(&b);
        assert!(sparse_prod.max_abs_diff(&dense_prod) < 1e-14);
    }

    #[test]
    fn transpose_of_symmetric_is_self() {
        let m = small();
        assert!(m.is_symmetric(0.0));
        assert_eq!(m.transpose(), m);
    }

    #[test]
    fn transpose_rectangular() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 2, 5.0);
        coo.push(1, 0, 1.0);
        let m = coo.to_csr();
        let t = m.transpose();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.get(2, 0), 5.0);
        assert_eq!(t.get(0, 1), 1.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn squared_weight_degrees_weighted() {
        let m = small();
        // Row 0: 2² = 4; row 1: 2²+3² = 13; row 2: 3²+1² = 10.
        assert_eq!(m.squared_weight_degrees(), vec![4.0, 13.0, 10.0]);
        assert_eq!(m.row_sums(), vec![2.0, 5.0, 4.0]);
    }

    #[test]
    fn norms_match_dense() {
        let m = small();
        let d = m.to_dense();
        assert!((m.induced_1_norm() - lsbp_linalg::induced_1_norm(&d)).abs() < 1e-14);
        assert!((m.induced_inf_norm() - lsbp_linalg::induced_inf_norm(&d)).abs() < 1e-14);
        assert!((m.frobenius_norm() - lsbp_linalg::frobenius_norm(&d)).abs() < 1e-14);
    }

    #[test]
    fn spectral_radius_path_graph() {
        // P3 path: eigenvalues ±√2, 0.
        let mut coo = CooMatrix::new(3, 3);
        coo.push_symmetric(0, 1, 1.0);
        coo.push_symmetric(1, 2, 1.0);
        let m = coo.to_csr();
        assert!((m.spectral_radius() - 2.0f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn identity_and_empty() {
        let i = CsrMatrix::identity(4);
        assert_eq!(i.nnz(), 4);
        assert_eq!(i.spmv(&[1.0, 2.0, 3.0, 4.0]), vec![1.0, 2.0, 3.0, 4.0]);
        let e = CsrMatrix::empty(2, 5);
        assert_eq!(e.nnz(), 0);
        assert_eq!(e.spmv(&[1.0; 5]), vec![0.0, 0.0]);
    }

    #[test]
    fn scale_and_prune() {
        let m = small().scale(0.0);
        assert_eq!(m.nnz(), 5); // explicit zeros kept
        let p = m.prune_zeros();
        assert_eq!(p.nnz(), 0);
        let m2 = small().scale(2.0);
        assert_eq!(m2.get(1, 2), 6.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_raw_parts_rejects_unsorted() {
        let _ = CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_raw_parts_rejects_bad_column() {
        let _ = CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![2], vec![1.0]);
    }

    #[test]
    fn entry_index_lookup() {
        let m = small();
        // values order: (0,1)=2, (1,0)=2, (1,2)=3, (2,1)=3, (2,2)=1
        assert_eq!(m.entry_index(1, 2), Some(2));
        assert_eq!(m.entry_index(2, 2), Some(4));
        assert!(m.entry_index(0, 0).is_none());
    }
}

//! Property tests for [`CsrMatrix`]: COO↔CSR roundtrip, transpose-twice
//! identity, and SpMV/SpMM agreement with a dense reference multiply, over
//! random seeded matrices.

use lsbp_linalg::Mat;
use lsbp_sparse::CooMatrix;
use proptest::prelude::*;
use std::collections::HashMap;

type Triplets = Vec<(usize, usize, f64)>;

/// Strategy: matrix dims plus a random triplet list (duplicates allowed —
/// `to_csr` must sum them).
fn triplets_strategy(max_dim: usize) -> impl Strategy<Value = (usize, usize, Triplets)> {
    (1..max_dim, 1..max_dim).prop_flat_map(|(rows, cols)| {
        let entry = (0..rows, 0..cols, -100..100i32);
        proptest::collection::vec(entry, 0..40).prop_map(move |list| {
            let triplets = list
                .into_iter()
                .map(|(r, c, v)| (r, c, v as f64 * 0.25))
                .collect();
            (rows, cols, triplets)
        })
    })
}

fn build_coo(rows: usize, cols: usize, triplets: &Triplets) -> CooMatrix {
    let mut coo = CooMatrix::new(rows, cols);
    for &(r, c, v) in triplets {
        coo.push(r, c, v);
    }
    coo
}

/// Dense reference: accumulate triplets into a `Mat`.
fn dense_reference(rows: usize, cols: usize, triplets: &Triplets) -> Mat {
    let mut m = Mat::zeros(rows, cols);
    for &(r, c, v) in triplets {
        m[(r, c)] += v;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// COO → CSR preserves every summed coordinate and nothing else.
    #[test]
    fn coo_to_csr_roundtrip((rows, cols, triplets) in triplets_strategy(12)) {
        let csr = build_coo(rows, cols, &triplets).to_csr();
        prop_assert_eq!(csr.n_rows(), rows);
        prop_assert_eq!(csr.n_cols(), cols);

        let mut expected: HashMap<(usize, usize), f64> = HashMap::new();
        for &(r, c, v) in &triplets {
            *expected.entry((r, c)).or_insert(0.0) += v;
        }
        // Every stored entry matches the summed triplets…
        for r in 0..rows {
            for (c, v) in csr.row_iter(r) {
                let want = expected.get(&(r, c)).copied().unwrap_or(0.0);
                prop_assert!((v - want).abs() < 1e-12, "entry ({r},{c}) = {v}, want {want}");
            }
        }
        // …and every coordinate pushed is stored (explicit zeros kept).
        prop_assert_eq!(csr.nnz(), expected.len());

        // CSR → COO → CSR is the identity.
        let mut back = CooMatrix::new(rows, cols);
        for r in 0..rows {
            for (c, v) in csr.row_iter(r) {
                back.push(r, c, v);
            }
        }
        prop_assert_eq!(back.to_csr(), csr);
    }

    /// Transposing twice is the identity, and the transpose itself is the
    /// dense transpose.
    #[test]
    fn transpose_twice_identity((rows, cols, triplets) in triplets_strategy(12)) {
        let csr = build_coo(rows, cols, &triplets).to_csr();
        let t = csr.transpose();
        prop_assert_eq!(t.n_rows(), cols);
        prop_assert_eq!(t.n_cols(), rows);
        prop_assert_eq!(t.transpose(), csr.clone());

        let dense = csr.to_dense();
        for r in 0..cols {
            for (c, v) in t.row_iter(r) {
                prop_assert_eq!(v, dense[(c, r)]);
            }
        }
        prop_assert_eq!(t.nnz(), csr.nnz());
    }

    /// SpMV agrees with the dense reference multiply.
    #[test]
    fn spmv_matches_dense(
        (rows, cols, triplets) in triplets_strategy(10),
        raw_x in proptest::collection::vec(-50..50i32, 10),
    ) {
        let csr = build_coo(rows, cols, &triplets).to_csr();
        let dense = dense_reference(rows, cols, &triplets);
        let x: Vec<f64> = raw_x.iter().take(cols).map(|&v| v as f64 * 0.5).collect();
        prop_assert_eq!(x.len(), cols);

        let y = csr.spmv(&x);
        for r in 0..rows {
            let want: f64 = (0..cols).map(|c| dense[(r, c)] * x[c]).sum();
            prop_assert!((y[r] - want).abs() < 1e-9, "row {r}: {} vs {want}", y[r]);
        }
    }

    /// SpMM (CSR × dense) agrees with the dense × dense reference.
    #[test]
    fn spmm_matches_dense(
        (rows, cols, triplets) in triplets_strategy(10),
        raw_b in proptest::collection::vec(-20..20i32, 30),
    ) {
        let k = 3;
        let csr = build_coo(rows, cols, &triplets).to_csr();
        let dense = dense_reference(rows, cols, &triplets);
        let b = Mat::from_fn(cols, k, |r, c| raw_b[(r * k + c) % raw_b.len()] as f64 * 0.5);

        let sparse_prod = csr.spmm(&b);
        let dense_prod = dense.matmul(&b);
        prop_assert!(sparse_prod.max_abs_diff(&dense_prod) < 1e-9);
    }

    /// Norms computed sparsely agree with the dense reference.
    #[test]
    fn norms_match_dense((rows, cols, triplets) in triplets_strategy(12)) {
        let csr = build_coo(rows, cols, &triplets).to_csr();
        let dense = csr.to_dense();
        prop_assert!((csr.induced_1_norm() - lsbp_linalg::induced_1_norm(&dense)).abs() < 1e-10);
        prop_assert!(
            (csr.induced_inf_norm() - lsbp_linalg::induced_inf_norm(&dense)).abs() < 1e-10
        );
        prop_assert!((csr.frobenius_norm() - lsbp_linalg::frobenius_norm(&dense)).abs() < 1e-10);
    }
}

//! Determinism contract of the parallel sparse kernels: for any matrix
//! and any thread count, `spmv` / `spmm` / `transpose` must produce
//! results **bitwise identical** to the serial reference (each output
//! region is computed by the unchanged serial code, so this is exact
//! equality, not tolerance-based). The min-work floor is forced to 1 so
//! the small random instances actually exercise the parallel code path.

use lsbp_linalg::{Mat, ParallelismConfig};
use lsbp_sparse::{CooMatrix, CsrMatrix};
use proptest::prelude::*;

type Triplets = Vec<(usize, usize, f64)>;

/// Strategy: matrix dims plus a random triplet list (duplicates allowed —
/// `to_csr` sums them), with irrational-ish values so any change in
/// accumulation order would show up in the low bits.
fn triplets_strategy(max_dim: usize) -> impl Strategy<Value = (usize, usize, Triplets)> {
    (1..max_dim, 1..max_dim).prop_flat_map(|(rows, cols)| {
        let entry = (0..rows, 0..cols, -1000..1000i32);
        proptest::collection::vec(entry, 0..120).prop_map(move |list| {
            let triplets = list
                .into_iter()
                .map(|(r, c, v)| (r, c, v as f64 / 7.0))
                .collect();
            (rows, cols, triplets)
        })
    })
}

fn build_csr(rows: usize, cols: usize, triplets: &Triplets) -> CsrMatrix {
    let mut coo = CooMatrix::new(rows, cols);
    for &(r, c, v) in triplets {
        coo.push(r, c, v);
    }
    coo.to_csr()
}

/// The thread counts the CI matrix pins via `LSBP_THREADS`; forced through
/// the parallel path regardless of input size.
fn sweep() -> Vec<ParallelismConfig> {
    [1usize, 2, 8]
        .into_iter()
        .map(|t| ParallelismConfig::with_threads(t).with_min_work(1))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SpMV: bitwise identical output vectors for every thread count.
    #[test]
    fn spmv_bitwise_identical_across_threads(
        (rows, cols, triplets) in triplets_strategy(24),
        raw_x in proptest::collection::vec(-300..300i32, 24),
    ) {
        let csr = build_csr(rows, cols, &triplets);
        let x: Vec<f64> = raw_x.iter().take(cols).map(|&v| v as f64 / 11.0).collect();
        let mut reference = vec![0.0; rows];
        csr.spmv_into_with(&x, &mut reference, &ParallelismConfig::serial());
        for cfg in sweep() {
            let mut y = vec![f64::NAN; rows];
            csr.spmv_into_with(&x, &mut y, &cfg);
            let same_bits = y
                .iter()
                .zip(&reference)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            prop_assert!(same_bits, "threads = {}: {y:?} vs {reference:?}", cfg.threads());
        }
    }

    /// SpMM: bitwise identical output matrices for every thread count.
    #[test]
    fn spmm_bitwise_identical_across_threads(
        (rows, cols, triplets) in triplets_strategy(20),
        raw_b in proptest::collection::vec(-200..200i32, 60),
        k in 1usize..5,
    ) {
        let csr = build_csr(rows, cols, &triplets);
        let b = Mat::from_fn(cols, k, |r, c| raw_b[(r * k + c) % raw_b.len()] as f64 / 13.0);
        let reference = csr.spmm_with(&b, &ParallelismConfig::serial());
        for cfg in sweep() {
            let par = csr.spmm_with(&b, &cfg);
            let same_bits = par
                .as_slice()
                .iter()
                .zip(reference.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            prop_assert!(same_bits, "threads = {}", cfg.threads());
            // And spmm_into over a dirty buffer fully overwrites it.
            let mut into = Mat::from_fn(rows, k, |_, _| f64::NAN);
            csr.spmm_into_with(&b, &mut into, &cfg);
            prop_assert_eq!(&into, &reference, "threads = {} (into)", cfg.threads());
        }
    }

    /// Transpose: identical CSR arrays (structure and values) for every
    /// thread count, and still a valid involution.
    #[test]
    fn transpose_identical_across_threads((rows, cols, triplets) in triplets_strategy(24)) {
        let csr = build_csr(rows, cols, &triplets);
        let reference = csr.transpose_with(&ParallelismConfig::serial());
        for cfg in sweep() {
            let par = csr.transpose_with(&cfg);
            prop_assert_eq!(&par, &reference, "threads = {}", cfg.threads());
            prop_assert_eq!(par.transpose_with(&cfg), csr.clone());
        }
    }
}

/// Empty matrices: every kernel degenerates gracefully under any config.
#[test]
fn empty_matrix_edge_cases() {
    for cfg in sweep() {
        let e = CsrMatrix::empty(4, 6);
        let mut y = vec![1.0; 4];
        e.spmv_into_with(&[0.5; 6], &mut y, &cfg);
        assert_eq!(y, vec![0.0; 4]);
        let prod = e.spmm_with(&Mat::from_fn(6, 2, |r, c| (r + c) as f64), &cfg);
        assert_eq!(prod, Mat::zeros(4, 2));
        let t = e.transpose_with(&cfg);
        assert_eq!(t.n_rows(), 6);
        assert_eq!(t.n_cols(), 4);
        assert_eq!(t.nnz(), 0);

        // Zero-row / zero-column shapes.
        let z = CsrMatrix::empty(0, 3);
        let mut none: Vec<f64> = Vec::new();
        z.spmv_into_with(&[1.0, 2.0, 3.0], &mut none, &cfg);
        assert!(none.is_empty());
        assert_eq!(z.transpose_with(&cfg).n_rows(), 3);
    }
}

/// A single stored row (one hub) must land entirely in one partition and
/// still match serial output exactly.
#[test]
fn single_row_edge_cases() {
    let mut coo = CooMatrix::new(1, 40);
    for c in 0..40 {
        coo.push(0, c, (c as f64 + 1.0) / 3.0);
    }
    let csr = coo.to_csr();
    let x: Vec<f64> = (0..40).map(|i| (i as f64 - 19.5) / 7.0).collect();
    let mut reference = vec![0.0; 1];
    csr.spmv_into_with(&x, &mut reference, &ParallelismConfig::serial());
    for cfg in sweep() {
        let mut y = vec![0.0; 1];
        csr.spmv_into_with(&x, &mut y, &cfg);
        assert_eq!(y[0].to_bits(), reference[0].to_bits());
        assert_eq!(csr.transpose_with(&cfg).n_rows(), 40);
        assert_eq!(csr.transpose_with(&cfg).transpose(), csr);
    }
}

//! Determinism contract of the parallel sparse kernels: for any matrix
//! and any thread count, `spmv` / `spmm` / `transpose` must produce
//! results **bitwise identical** to the serial reference (each output
//! region is computed by the unchanged serial code, so this is exact
//! equality, not tolerance-based). The min-work floor is forced to 1 so
//! the small random instances actually exercise the parallel code path.

use lsbp_linalg::{Mat, ParallelismConfig};
use lsbp_sparse::{CooMatrix, CsrMatrix, FusedLinBpStep};
use proptest::prelude::*;

type Triplets = Vec<(usize, usize, f64)>;

/// Strategy: matrix dims plus a random triplet list (duplicates allowed —
/// `to_csr` sums them), with irrational-ish values so any change in
/// accumulation order would show up in the low bits.
fn triplets_strategy(max_dim: usize) -> impl Strategy<Value = (usize, usize, Triplets)> {
    (1..max_dim, 1..max_dim).prop_flat_map(|(rows, cols)| {
        let entry = (0..rows, 0..cols, -1000..1000i32);
        proptest::collection::vec(entry, 0..120).prop_map(move |list| {
            let triplets = list
                .into_iter()
                .map(|(r, c, v)| (r, c, v as f64 / 7.0))
                .collect();
            (rows, cols, triplets)
        })
    })
}

fn build_csr(rows: usize, cols: usize, triplets: &Triplets) -> CsrMatrix {
    let mut coo = CooMatrix::new(rows, cols);
    for &(r, c, v) in triplets {
        coo.push(r, c, v);
    }
    coo.to_csr()
}

/// The thread counts the CI matrix pins via `LSBP_THREADS`; forced through
/// the parallel path regardless of input size.
fn sweep() -> Vec<ParallelismConfig> {
    [1usize, 2, 8]
        .into_iter()
        .map(|t| ParallelismConfig::with_threads(t).with_min_work(1))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SpMV: bitwise identical output vectors for every thread count.
    #[test]
    fn spmv_bitwise_identical_across_threads(
        (rows, cols, triplets) in triplets_strategy(24),
        raw_x in proptest::collection::vec(-300..300i32, 24),
    ) {
        let csr = build_csr(rows, cols, &triplets);
        let x: Vec<f64> = raw_x.iter().take(cols).map(|&v| v as f64 / 11.0).collect();
        let mut reference = vec![0.0; rows];
        csr.spmv_into_with(&x, &mut reference, &ParallelismConfig::serial());
        for cfg in sweep() {
            let mut y = vec![f64::NAN; rows];
            csr.spmv_into_with(&x, &mut y, &cfg);
            let same_bits = y
                .iter()
                .zip(&reference)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            prop_assert!(same_bits, "threads = {}: {y:?} vs {reference:?}", cfg.threads());
        }
    }

    /// SpMM: bitwise identical output matrices for every thread count.
    #[test]
    fn spmm_bitwise_identical_across_threads(
        (rows, cols, triplets) in triplets_strategy(20),
        raw_b in proptest::collection::vec(-200..200i32, 60),
        k in 1usize..5,
    ) {
        let csr = build_csr(rows, cols, &triplets);
        let b = Mat::from_fn(cols, k, |r, c| raw_b[(r * k + c) % raw_b.len()] as f64 / 13.0);
        let reference = csr.spmm_with(&b, &ParallelismConfig::serial());
        for cfg in sweep() {
            let par = csr.spmm_with(&b, &cfg);
            let same_bits = par
                .as_slice()
                .iter()
                .zip(reference.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            prop_assert!(same_bits, "threads = {}", cfg.threads());
            // And spmm_into over a dirty buffer fully overwrites it.
            let mut into = Mat::from_fn(rows, k, |_, _| f64::NAN);
            csr.spmm_into_with(&b, &mut into, &cfg);
            prop_assert_eq!(&into, &reference, "threads = {} (into)", cfg.threads());
        }
    }

    /// Transpose: identical CSR arrays (structure and values) for every
    /// thread count, and still a valid involution.
    #[test]
    fn transpose_identical_across_threads((rows, cols, triplets) in triplets_strategy(24)) {
        let csr = build_csr(rows, cols, &triplets);
        let reference = csr.transpose_with(&ParallelismConfig::serial());
        for cfg in sweep() {
            let par = csr.transpose_with(&cfg);
            prop_assert_eq!(&par, &reference, "threads = {}", cfg.threads());
            prop_assert_eq!(par.transpose_with(&cfg), csr.clone());
        }
    }

    /// u32-index CSR round trip: the compact build carries exactly the
    /// structure and values a `usize` reference model prescribes, and the
    /// COO → CSR → transpose → transpose chain preserves it. Coordinates
    /// are deduplicated first (keeping the first value) so the model is
    /// independent of the COO builder's unstable duplicate-merge order —
    /// duplicate merging itself is covered by the kernels' tests above.
    #[test]
    fn u32_round_trip_matches_usize_model((rows, cols, raw_triplets) in triplets_strategy(24)) {
        let mut seen = std::collections::HashSet::new();
        let triplets: Triplets = raw_triplets
            .into_iter()
            .filter(|&(r, c, _)| seen.insert((r, c)))
            .collect();
        // Reference model in plain usize arithmetic.
        let mut model = triplets.clone();
        model.sort_by_key(|&(r, c, _)| (r, c));
        let csr = build_csr(rows, cols, &triplets);
        prop_assert_eq!(csr.nnz(), model.len());
        let mut idx = 0usize;
        for r in 0..rows {
            for (c, v) in csr.row_iter(r) {
                let (mr, mc, mv) = model[idx];
                prop_assert_eq!((r, c), (mr, mc));
                prop_assert_eq!(v.to_bits(), mv.to_bits());
                // The compact index widens back to the exact usize column.
                prop_assert_eq!(csr.row_cols(r)[idx - csr.row_offsets()[r]] as usize, mc);
                idx += 1;
            }
        }
        prop_assert_eq!(idx, model.len());
        // Transpose round trip (serial and parallel alike, via the sweep
        // above) returns the identical matrix.
        let t = csr.transpose();
        prop_assert_eq!(t.n_rows(), cols);
        prop_assert_eq!(&t.transpose(), &csr);
    }

    /// `get`/`entry_index` binary-search the compact u32 column slice and
    /// must agree with a naive scan over `row_iter`.
    #[test]
    fn get_and_entry_index_match_naive_scan((rows, cols, triplets) in triplets_strategy(16)) {
        let csr = build_csr(rows, cols, &triplets);
        for r in 0..rows {
            for c in 0..cols {
                let scan = csr.row_iter(r).find(|&(cc, _)| cc == c);
                match scan {
                    Some((_, v)) => {
                        prop_assert_eq!(csr.get(r, c).to_bits(), v.to_bits());
                        let e = csr.entry_index(r, c).expect("stored entry must be found");
                        prop_assert!(e >= csr.row_offsets()[r] && e < csr.row_offsets()[r + 1]);
                    }
                    None => {
                        prop_assert_eq!(csr.get(r, c), 0.0);
                        prop_assert!(csr.entry_index(r, c).is_none());
                    }
                }
            }
        }
    }

    /// The fused LinBP step is bitwise identical across thread counts,
    /// for both the width-specialized single-query kernel (k = kt) and
    /// the generic stacked kernel (q > 1).
    #[test]
    fn fused_step_bitwise_identical_across_threads(
        (dim, _, triplets) in triplets_strategy(24),
        raw in proptest::collection::vec(-400..400i32, 64),
        k in 2usize..5,
        q in 1usize..3,
        echo_flag in 0usize..2,
        damp_flag in 0usize..2,
    ) {
        let (echo, damped) = (echo_flag == 1, damp_flag == 1);
        // Square adjacency from the triplets (coordinates folded into dim).
        let mut coo = CooMatrix::new(dim, dim);
        for &(r, c, v) in &triplets {
            coo.push(r % dim, c % dim, v);
        }
        let adj = coo.to_csr();
        let kt = k * q;
        let at = |i: usize| raw[i % raw.len()] as f64 / 9.0;
        let b = Mat::from_fn(dim, kt, |r, c| at(r * kt + c) * 0.01);
        let e_hat = Mat::from_fn(dim, kt, |r, c| at(r * kt + c + 7) * 0.1);
        let h = Mat::from_fn(k, k, |r, c| at(r * k + c + 3) * 0.05);
        let h2 = h.matmul(&h);
        let degrees = adj.squared_weight_degrees();
        let step = FusedLinBpStep {
            e_hat: &e_hat,
            h: &h,
            h2: echo.then_some(&h2),
            degrees: &degrees,
            damping: if damped { 0.3 } else { 0.0 },
        };
        let mut reference = Mat::zeros(dim, kt);
        let mut ref_deltas = vec![0.0f64; q];
        adj.linbp_step_fused_with(&b, &step, &mut reference, &mut ref_deltas,
                                  &ParallelismConfig::serial());
        for cfg in sweep() {
            let mut out = Mat::from_fn(dim, kt, |_, _| f64::NAN); // must be overwritten
            let mut deltas = vec![f64::NAN; q];
            adj.linbp_step_fused_with(&b, &step, &mut out, &mut deltas, &cfg);
            let same = out.as_slice().iter().zip(reference.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            prop_assert!(same, "threads = {} k = {k} q = {q}", cfg.threads());
            for (d, rd) in deltas.iter().zip(&ref_deltas) {
                prop_assert_eq!(d.to_bits(), rd.to_bits(), "threads = {}", cfg.threads());
            }
        }
    }
}

/// Empty matrices: every kernel degenerates gracefully under any config.
#[test]
fn empty_matrix_edge_cases() {
    for cfg in sweep() {
        let e = CsrMatrix::empty(4, 6);
        let mut y = vec![1.0; 4];
        e.spmv_into_with(&[0.5; 6], &mut y, &cfg);
        assert_eq!(y, vec![0.0; 4]);
        let prod = e.spmm_with(&Mat::from_fn(6, 2, |r, c| (r + c) as f64), &cfg);
        assert_eq!(prod, Mat::zeros(4, 2));
        let t = e.transpose_with(&cfg);
        assert_eq!(t.n_rows(), 6);
        assert_eq!(t.n_cols(), 4);
        assert_eq!(t.nnz(), 0);

        // Zero-row / zero-column shapes.
        let z = CsrMatrix::empty(0, 3);
        let mut none: Vec<f64> = Vec::new();
        z.spmv_into_with(&[1.0, 2.0, 3.0], &mut none, &cfg);
        assert!(none.is_empty());
        assert_eq!(z.transpose_with(&cfg).n_rows(), 3);
    }
}

/// A single stored row (one hub) must land entirely in one partition and
/// still match serial output exactly.
#[test]
fn single_row_edge_cases() {
    let mut coo = CooMatrix::new(1, 40);
    for c in 0..40 {
        coo.push(0, c, (c as f64 + 1.0) / 3.0);
    }
    let csr = coo.to_csr();
    let x: Vec<f64> = (0..40).map(|i| (i as f64 - 19.5) / 7.0).collect();
    let mut reference = vec![0.0; 1];
    csr.spmv_into_with(&x, &mut reference, &ParallelismConfig::serial());
    for cfg in sweep() {
        let mut y = vec![0.0; 1];
        csr.spmv_into_with(&x, &mut y, &cfg);
        assert_eq!(y[0].to_bits(), reference[0].to_bits());
        assert_eq!(csr.transpose_with(&cfg).n_rows(), 40);
        assert_eq!(csr.transpose_with(&cfg).transpose(), csr);
    }
}

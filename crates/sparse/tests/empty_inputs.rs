//! Regression tests for degenerate shapes: zero-row / zero-column matrices
//! must construct and operate without panicking, since incremental SBP and
//! the generators legitimately produce empty deltas.

use lsbp_linalg::Mat;
use lsbp_sparse::{CooMatrix, CsrMatrix};

#[test]
fn from_raw_parts_zero_rows() {
    let m = CsrMatrix::from_raw_parts(0, 0, vec![0], vec![], vec![]);
    assert_eq!(m.n_rows(), 0);
    assert_eq!(m.n_cols(), 0);
    assert_eq!(m.nnz(), 0);
    assert_eq!(m.spmv(&[]), Vec::<f64>::new());
    assert_eq!(m.transpose(), m);
    assert!(m.is_symmetric(0.0));
}

#[test]
fn from_raw_parts_zero_rows_nonzero_cols() {
    let m = CsrMatrix::from_raw_parts(0, 3, vec![0], vec![], vec![]);
    assert_eq!(m.spmv(&[1.0, 2.0, 3.0]), Vec::<f64>::new());
    let t = m.transpose();
    assert_eq!(t.n_rows(), 3);
    assert_eq!(t.n_cols(), 0);
    assert_eq!(t.nnz(), 0);
    assert_eq!(t.spmv(&[]), vec![0.0; 3]);
}

#[test]
fn empty_and_identity_zero() {
    let e = CsrMatrix::empty(0, 0);
    assert_eq!(e.nnz(), 0);
    assert_eq!(e.induced_1_norm(), 0.0);
    assert_eq!(e.induced_inf_norm(), 0.0);
    assert_eq!(e.frobenius_norm(), 0.0);
    assert_eq!(e.row_sums(), Vec::<f64>::new());
    assert_eq!(e.squared_weight_degrees(), Vec::<f64>::new());
    let i = CsrMatrix::identity(0);
    assert_eq!(i.nnz(), 0);
}

#[test]
fn coo_zero_dims_roundtrip() {
    let coo = CooMatrix::new(0, 0);
    assert!(coo.is_empty());
    let csr = coo.to_csr();
    assert_eq!(csr.n_rows(), 0);
    assert_eq!(csr.nnz(), 0);
}

#[test]
fn spmm_with_zero_rows() {
    let m = CsrMatrix::from_raw_parts(0, 2, vec![0], vec![], vec![]);
    let b = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
    let out = m.spmm(&b);
    assert_eq!(out.rows(), 0);
    assert_eq!(out.cols(), 2);
}

#[test]
fn prune_and_scale_empty() {
    let m = CsrMatrix::empty(0, 0);
    assert_eq!(m.scale(2.0).nnz(), 0);
    assert_eq!(m.prune_zeros().nnz(), 0);
}

#[test]
#[should_panic(expected = "row_ptr length")]
fn from_raw_parts_rejects_empty_row_ptr() {
    // Even with zero rows, `row_ptr` must hold the single sentinel 0.
    let _ = CsrMatrix::from_raw_parts(0, 0, vec![], vec![], vec![]);
}

//! Batched multi-query solves — many labeling queries, one pass.
//!
//! A production deployment answers *many* classification queries over the
//! same graph (different seed sets, same adjacency and coupling). Run
//! separately, `q` queries cost `q` SpMM sweeps over the identical sparse
//! structure; batched, the `q` seed matrices are stacked side by side
//! into one `n × (k·q)` matrix and every iteration is **one** SpMM — the
//! adjacency is streamed through the cache once per round instead of `q`
//! times, which is exactly the amortization the paper's "BP as sparse
//! matrix algebra" framing buys (Sect. 5).
//!
//! Per-query convergence is tracked with masks: a query whose belief
//! change drops under `tol` (or whose magnitudes trip the divergence
//! guard) is **frozen** — its column block stops updating and its
//! per-query result records the iteration it stopped at — while the
//! remaining queries keep iterating. Freezing is what makes the batched
//! results **bitwise identical** to `q` independent solves: a frozen
//! query's beliefs are exactly the beliefs the standalone run would have
//! returned, not "the same query iterated a little longer".
//!
//! Why bitwise identity holds (and is property-tested): the stacked SpMM
//! and the block-diagonal `·Ĥ` accumulate every output element in the
//! same order as the single-query kernels (columns never mix), the `+Ê` /
//! `−D·B̂·Ĥ²` terms are element-wise, and the per-query delta/guard
//! read-outs are order-independent maxima (or fixed-order L2 sums) over
//! exactly the single-query elements.

use crate::beliefs::{BeliefMatrix, ExplicitBeliefs};
use crate::linbp::{LinBpError, LinBpOptions, LinBpResult};
use crate::rwr::{RwrError, RwrOptions, RwrResult};
use lsbp_linalg::{
    FixedPointOp, FixedPointSolver, Mat, ParallelismConfig, StepOutcome, ToleranceNorm,
};
use lsbp_sparse::{CsrMatrix, FrontierState, FusedLinBpStep, PropagationOperator};

/// Runs **LinBP** (Eq. 6, with echo cancellation) on `q` independent
/// seed-sets in one pass: one stacked SpMM per iteration, per-query
/// convergence masks. Returns one [`LinBpResult`] per query, each bitwise
/// identical to what [`crate::linbp::linbp`] returns for that query
/// alone. Honors the shard knob on `opts.parallelism` like
/// [`crate::linbp::linbp`].
pub fn linbp_batch(
    adj: &CsrMatrix,
    queries: &[ExplicitBeliefs],
    h_residual: &Mat,
    opts: &LinBpOptions,
) -> Result<Vec<LinBpResult>, LinBpError> {
    crate::with_operator(adj, &opts.parallelism, |op| {
        linbp_batch_run_on(op, queries, h_residual, opts, true)
    })
}

/// [`linbp_batch`] without the echo-cancellation term (**LinBP\***,
/// Eq. 7); bitwise identical to per-query [`crate::linbp::linbp_star`].
pub fn linbp_star_batch(
    adj: &CsrMatrix,
    queries: &[ExplicitBeliefs],
    h_residual: &Mat,
    opts: &LinBpOptions,
) -> Result<Vec<LinBpResult>, LinBpError> {
    crate::with_operator(adj, &opts.parallelism, |op| {
        linbp_batch_run_on(op, queries, h_residual, opts, false)
    })
}

/// [`linbp_batch`] against any [`PropagationOperator`] — the operator is
/// used as given (no re-sharding).
pub fn linbp_batch_on<A: PropagationOperator + ?Sized>(
    adj: &A,
    queries: &[ExplicitBeliefs],
    h_residual: &Mat,
    opts: &LinBpOptions,
) -> Result<Vec<LinBpResult>, LinBpError> {
    linbp_batch_run_on(adj, queries, h_residual, opts, true)
}

/// [`linbp_star_batch`] against any [`PropagationOperator`].
pub fn linbp_star_batch_on<A: PropagationOperator + ?Sized>(
    adj: &A,
    queries: &[ExplicitBeliefs],
    h_residual: &Mat,
    opts: &LinBpOptions,
) -> Result<Vec<LinBpResult>, LinBpError> {
    linbp_batch_run_on(adj, queries, h_residual, opts, false)
}

/// Per-query progress book-keeping for the batched LinBP iteration.
struct QuerySlot {
    frozen: bool,
    converged: bool,
    diverged: bool,
    iterations: usize,
    final_delta: f64,
}

/// The stacked LinBP update as a [`FixedPointOp`], backed by the fused
/// kernel ([`CsrMatrix::linbp_step_fused_with`]) applying `Ĥ` per
/// `k`-column block: one row-partitioned pass computes the update,
/// damping and every query's max-abs residual together. The outer solver
/// runs in "operator-controlled" mode (`tol = 0`, no guard): tolerance
/// and divergence are applied *per query* inside the step, with the same
/// comparisons in the same order as the single-query solver.
struct LinBpBatchIteration<'a, A: PropagationOperator + ?Sized> {
    adj: &'a A,
    e_hat: &'a Mat,
    h: &'a Mat,
    h2: Option<&'a Mat>,
    degrees: &'a [f64],
    b: Mat,
    next: Mat,
    k: usize,
    cfg: ParallelismConfig,
    tol: f64,
    divergence_guard: f64,
    slots: Vec<QuerySlot>,
    deltas: Vec<f64>,
    /// Active-frontier change tracking; composes with the per-query
    /// freeze masks (frozen queries already skip — frozen *rows* now do
    /// too). `None` forces full recomputation. Bitwise identical either
    /// way.
    frontier: Option<FrontierState>,
    /// Reusable not-frozen mask handed to the frontier as the set of
    /// query blocks that participate in change detection. Exact because
    /// the update is block-diagonal per query and the frozen set only
    /// grows: bits recorded under an older (larger) mask are a
    /// conservative superset.
    active_mask: Vec<bool>,
}

impl<A: PropagationOperator + ?Sized> FixedPointOp for LinBpBatchIteration<'_, A> {
    fn step(&mut self, solver: &FixedPointSolver, iteration: usize) -> StepOutcome {
        let k = self.k;
        // One stacked fused update — exactly the single-query fused step
        // per k-column block, residuals accumulated per query in-pass.
        // (Frozen queries are computed too, like the unfused stacked
        // update before; their outputs are discarded below. Frozen
        // columns are pinned by the restore loop below, so both buffers
        // agree on them every iteration — which is what lets the
        // frontier's changed-bit compare restrict to active blocks.)
        let fstep = FusedLinBpStep {
            e_hat: self.e_hat,
            h: self.h,
            h2: self.h2,
            degrees: self.degrees,
            damping: solver.damping,
        };
        let counters = match self.frontier.as_mut() {
            Some(state) => {
                for (m, slot) in self.active_mask.iter_mut().zip(&self.slots) {
                    *m = !slot.frozen;
                }
                let mut fr = state.begin(Some(&self.active_mask));
                self.adj.linbp_step_fused_frontier_with(
                    &self.b,
                    &fstep,
                    &mut self.next,
                    &mut self.deltas,
                    &mut fr,
                    &self.cfg,
                );
                Some((fr.rows_active, fr.rows_skipped))
            }
            None => {
                self.adj.linbp_step_fused_with(
                    &self.b,
                    &fstep,
                    &mut self.next,
                    &mut self.deltas,
                    &self.cfg,
                );
                None
            }
        };
        // The fused pass already produced max-abs deltas; L2 queries
        // replace theirs with the fixed-order column-block read-out
        // (fusing L2 would tie the sum to the row partition).
        if solver.norm == ToleranceNorm::L2 {
            for (j, slot) in self.slots.iter().enumerate() {
                if slot.frozen {
                    continue;
                }
                self.deltas[j] = self.next.l2_diff_cols(&self.b, j * k..(j + 1) * k);
            }
        }
        std::mem::swap(&mut self.b, &mut self.next);
        // Frozen queries keep their final beliefs: copy them forward from
        // the previous buffer (their stacked-step output is discarded).
        for (j, slot) in self.slots.iter().enumerate() {
            if slot.frozen {
                for r in 0..self.b.rows() {
                    let cols = j * k..(j + 1) * k;
                    self.b.row_mut(r)[cols.clone()]
                        .copy_from_slice(&self.next.row(r)[cols.clone()]);
                }
            }
        }
        // Per-query stop policy — the same checks, in the same order, as
        // the single-query solver applies after its swap.
        let mut remaining = 0.0f64;
        let mut any_active = false;
        for (j, slot) in self.slots.iter_mut().enumerate() {
            if slot.frozen {
                continue;
            }
            let delta = self.deltas[j];
            slot.iterations = iteration + 1;
            slot.final_delta = delta;
            let cols = j * k..(j + 1) * k;
            if (self.divergence_guard.is_finite()
                && self.b.max_abs_cols(cols) > self.divergence_guard)
                || !delta.is_finite()
            {
                slot.frozen = true;
                slot.diverged = true;
            } else if self.tol > 0.0 && delta < self.tol {
                slot.frozen = true;
                slot.converged = true;
            } else {
                any_active = true;
                remaining = remaining.max(delta);
            }
        }
        if let (Some(state), Some((active, skipped))) = (self.frontier.as_mut(), counters) {
            state.commit(active, skipped);
        }
        if any_active {
            StepOutcome::proceed(remaining)
        } else {
            StepOutcome::converged(remaining)
        }
    }
}

fn linbp_batch_run_on<A: PropagationOperator + ?Sized>(
    adj: &A,
    queries: &[ExplicitBeliefs],
    h_residual: &Mat,
    opts: &LinBpOptions,
    echo: bool,
) -> Result<Vec<LinBpResult>, LinBpError> {
    let n = adj.n_rows();
    let k = h_residual.rows();
    if adj.n_cols() != n {
        return Err(LinBpError::DimensionMismatch);
    }
    if h_residual.cols() != k {
        return Err(LinBpError::CouplingArityMismatch);
    }
    for e in queries {
        if e.n() != n {
            return Err(LinBpError::DimensionMismatch);
        }
        if e.k() != k {
            return Err(LinBpError::CouplingArityMismatch);
        }
    }
    let q = queries.len();
    if q == 0 {
        return Ok(Vec::new());
    }

    // Stack the q seed matrices side by side: column block j = query j.
    let mut e_hat = Mat::zeros(n, k * q);
    for (j, e) in queries.iter().enumerate() {
        let em = e.residual_matrix();
        for r in 0..n {
            e_hat.row_mut(r)[j * k..(j + 1) * k].copy_from_slice(em.row(r));
        }
    }
    let h2 = if echo {
        Some(h_residual.matmul(h_residual))
    } else {
        None
    };
    let degrees = if echo {
        adj.squared_weight_degrees()
    } else {
        vec![0.0; n]
    };

    let mut op = LinBpBatchIteration {
        adj,
        e_hat: &e_hat,
        h: h_residual,
        h2: h2.as_ref(),
        degrees: &degrees,
        b: e_hat.clone(),
        next: Mat::zeros(n, k * q),
        k,
        cfg: opts.parallelism,
        tol: opts.tol,
        divergence_guard: opts.divergence_guard,
        slots: (0..q)
            .map(|_| QuerySlot {
                frozen: false,
                converged: false,
                diverged: false,
                iterations: 0,
                final_delta: f64::INFINITY,
            })
            .collect(),
        deltas: vec![f64::INFINITY; q],
        frontier: opts
            .parallelism
            .frontier()
            .then(|| FrontierState::new(adj.frontier_plan())),
        active_mask: vec![true; q],
    };
    // Operator-controlled stopping: the per-query masks inside the step
    // implement tolerance and guard; the outer solver only carries the
    // budget, norm and damping.
    let outcome = FixedPointSolver::new(opts.max_iter, 0.0)
        .with_norm(opts.norm)
        .with_damping(opts.damping)
        .run(&mut op);

    // Whole-run frontier totals: the counters describe the shared stacked
    // solve, so every per-query result carries the same pair (consumers
    // aggregating across queries of one batch take the max, not the sum).
    let (rows_active, rows_skipped) = op
        .frontier
        .as_ref()
        .map(|s| (s.rows_active, s.rows_skipped))
        .unwrap_or(((n * outcome.iterations) as u64, 0));
    Ok(op
        .slots
        .iter()
        .enumerate()
        .map(|(j, slot)| {
            let mut beliefs = Mat::zeros(n, k);
            for r in 0..n {
                beliefs
                    .row_mut(r)
                    .copy_from_slice(&op.b.row(r)[j * k..(j + 1) * k]);
            }
            LinBpResult {
                beliefs: BeliefMatrix::from_mat(beliefs),
                converged: slot.converged,
                diverged: slot.diverged,
                iterations: slot.iterations,
                final_delta: slot.final_delta,
                rows_active,
                rows_skipped,
            }
        })
        .collect())
}

/// Per-walk (query × class) progress book-keeping for the batched RWR.
struct WalkSlot {
    frozen: bool,
    converged: bool,
    iterations: usize,
}

/// The stacked RWR power iteration as a [`FixedPointOp`]: all `q · k`
/// walks diffuse through one SpMM per round; converged walks freeze.
struct RwrBatchIteration<'a, A: PropagationOperator + ?Sized> {
    adj: &'a A,
    degrees: &'a [f64],
    restart_dist: &'a Mat,
    restart: f64,
    tol: f64,
    scores: Mat,
    scaled: Mat,
    diffused: Mat,
    cfg: ParallelismConfig,
    slots: Vec<WalkSlot>,
}

impl<A: PropagationOperator + ?Sized> FixedPointOp for RwrBatchIteration<'_, A> {
    fn step(&mut self, solver: &FixedPointSolver, iteration: usize) -> StepOutcome {
        let n = self.adj.n_rows();
        // Scale every column by inverse degrees (frozen columns too: their
        // diffused output is simply discarded) and diffuse all walks with
        // one SpMM.
        for v in 0..n {
            let deg = self.degrees[v];
            for (dst, &x) in self
                .scaled
                .row_mut(v)
                .iter_mut()
                .zip(self.scores.row(v).iter())
            {
                // The exact single-walk expression (`x / deg`, not
                // `x · (1/deg)`) — reciprocal-multiply rounds differently.
                *dst = if deg > 0.0 { x / deg } else { 0.0 };
            }
        }
        self.adj
            .spmm_into_with(&self.scaled, &mut self.diffused, &self.cfg);
        let mut remaining = 0.0f64;
        let mut any_active = false;
        for (col, slot) in self.slots.iter_mut().enumerate() {
            if slot.frozen {
                continue;
            }
            // The per-walk update, in exactly the single-walk element
            // order: blend, delta, write-back, then mass renormalization.
            let mut delta = 0.0f64;
            for v in 0..n {
                let next = (1.0 - self.restart) * self.diffused[(v, col)]
                    + self.restart * self.restart_dist[(v, col)];
                match solver.norm {
                    ToleranceNorm::MaxAbs => {
                        delta = delta.max((next - self.scores[(v, col)]).abs())
                    }
                    ToleranceNorm::L2 => {
                        let d = next - self.scores[(v, col)];
                        delta += d * d;
                    }
                }
                self.scores[(v, col)] = next;
            }
            if solver.norm == ToleranceNorm::L2 {
                delta = delta.sqrt();
            }
            let mass: f64 = (0..n).map(|v| self.scores[(v, col)]).sum();
            if mass > 0.0 {
                for v in 0..n {
                    self.scores[(v, col)] /= mass;
                }
            }
            slot.iterations = iteration + 1;
            if self.tol > 0.0 && delta < self.tol {
                slot.frozen = true;
                slot.converged = true;
            } else if !delta.is_finite() {
                slot.frozen = true;
            } else {
                any_active = true;
                remaining = remaining.max(delta);
            }
        }
        if any_active {
            StepOutcome::proceed(remaining)
        } else {
            StepOutcome::converged(remaining)
        }
    }
}

/// Runs [`crate::rwr::rwr`] on `q` independent seed-sets in one pass: all
/// `q · k` per-class walks diffuse through a single SpMM per iteration,
/// with per-walk convergence masks. Returns one [`RwrResult`] per query,
/// each bitwise identical to the standalone run. Honors the shard knob on
/// `opts.parallelism` like [`crate::rwr::rwr`].
pub fn rwr_batch(
    adj: &CsrMatrix,
    queries: &[ExplicitBeliefs],
    opts: &RwrOptions,
) -> Result<Vec<RwrResult>, RwrError> {
    crate::with_operator(adj, &opts.parallelism, |op| rwr_batch_on(op, queries, opts))
}

/// [`rwr_batch`] against any [`PropagationOperator`] — the operator is
/// used as given (no re-sharding).
pub fn rwr_batch_on<A: PropagationOperator + ?Sized>(
    adj: &A,
    queries: &[ExplicitBeliefs],
    opts: &RwrOptions,
) -> Result<Vec<RwrResult>, RwrError> {
    let n = adj.n_rows();
    if adj.n_cols() != n {
        return Err(RwrError::DimensionMismatch);
    }
    if !(opts.restart > 0.0 && opts.restart <= 1.0) {
        return Err(RwrError::BadRestart);
    }
    let q = queries.len();
    if q == 0 {
        return Ok(Vec::new());
    }
    let k = queries[0].k();
    for e in queries {
        if e.n() != n {
            return Err(RwrError::DimensionMismatch);
        }
        if e.k() != k {
            return Err(RwrError::DimensionMismatch);
        }
    }

    // Stacked restart distributions: column j·k + c = query j, class c —
    // the same per-query construction (and error) as the standalone run.
    let mut restart_dist = Mat::zeros(n, k * q);
    for (j, e) in queries.iter().enumerate() {
        let single = crate::rwr::restart_distribution(e)?;
        for v in 0..n {
            restart_dist.row_mut(v)[j * k..(j + 1) * k].copy_from_slice(single.row(v));
        }
    }

    let degrees = adj.row_sums();
    let mut op = RwrBatchIteration {
        adj,
        degrees: &degrees,
        restart_dist: &restart_dist,
        restart: opts.restart,
        tol: opts.tol,
        scores: restart_dist.clone(),
        scaled: Mat::zeros(n, k * q),
        diffused: Mat::zeros(n, k * q),
        cfg: opts.parallelism,
        slots: (0..k * q)
            .map(|_| WalkSlot {
                frozen: false,
                converged: false,
                iterations: 0,
            })
            .collect(),
    };
    FixedPointSolver::new(opts.max_iter, 0.0)
        .with_norm(opts.norm)
        .run(&mut op);

    Ok((0..q)
        .map(|j| {
            let walks = &op.slots[j * k..(j + 1) * k];
            let converged = walks.iter().all(|w| w.converged);
            let iterations = walks.iter().map(|w| w.iterations).max().unwrap_or(0);
            // Residual centering, exactly as the standalone read-out.
            let mut residual = Mat::zeros(n, k);
            for v in 0..n {
                let row = &op.scores.row(v)[j * k..(j + 1) * k];
                let mean: f64 = row.iter().sum::<f64>() / k as f64;
                if row.iter().any(|&x| x > 0.0) {
                    for (c, &x) in row.iter().enumerate() {
                        residual[(v, c)] = x - mean;
                    }
                }
            }
            RwrResult {
                beliefs: BeliefMatrix::from_mat(residual),
                converged,
                iterations,
            }
        })
        .collect())
}

/// Batched incremental maintenance — [`crate::linbp::linbp_update`] over
/// a batch of `(previous beliefs, explicit-belief delta)` pairs in **one
/// pass**: the `q` delta seed-sets run through the stacked fused
/// iteration path exactly like [`linbp_batch`] (one SpMM per round,
/// per-query freeze masks), and each converged delta solution is added
/// onto its previous beliefs by linearity (Proposition 7 — see
/// [`crate::linbp::linbp_update`] for why this is exact).
///
/// This is the post-edge-change refresh path a serving deployment runs
/// when a label change invalidates many cached query results at once:
/// instead of `q` separate `linbp_update` solves re-streaming the
/// adjacency `q` times per iteration, the whole refresh is one batched
/// solve. Results are **bitwise identical** to calling `linbp_update` per
/// pair (property-tested): the batched delta solve is bitwise equal to
/// the standalone one, and the final add is element-wise.
///
/// `previous` and `deltas` are parallel slices (pair `j` = query `j`);
/// `echo` selects LinBP (Eq. 6) vs. LinBP\* (Eq. 7), and divergent delta
/// runs are returned as-is without touching the previous beliefs, exactly
/// like the per-query function. Honors the shard knob on
/// `opts.parallelism`.
pub fn linbp_update_batch(
    adj: &CsrMatrix,
    previous: &[&BeliefMatrix],
    deltas: &[ExplicitBeliefs],
    h_residual: &Mat,
    opts: &LinBpOptions,
    echo: bool,
) -> Result<Vec<LinBpResult>, LinBpError> {
    crate::with_operator(adj, &opts.parallelism, |op| {
        linbp_update_batch_on(op, previous, deltas, h_residual, opts, echo)
    })
}

/// [`linbp_update_batch`] against any [`PropagationOperator`] — the
/// operator is used as given (no re-sharding), which is what a serving
/// deployment holding a prebuilt [`lsbp_sparse::ShardedCsr`] in its graph
/// registry calls on the cache-patching path.
pub fn linbp_update_batch_on<A: PropagationOperator + ?Sized>(
    adj: &A,
    previous: &[&BeliefMatrix],
    deltas: &[ExplicitBeliefs],
    h_residual: &Mat,
    opts: &LinBpOptions,
    echo: bool,
) -> Result<Vec<LinBpResult>, LinBpError> {
    if previous.len() != deltas.len() {
        return Err(LinBpError::DimensionMismatch);
    }
    for (prev, delta) in previous.iter().zip(deltas) {
        if prev.n() != delta.n() || prev.k() != delta.k() {
            return Err(LinBpError::DimensionMismatch);
        }
    }
    let delta_runs = linbp_batch_run_on(adj, deltas, h_residual, opts, echo)?;
    Ok(previous
        .iter()
        .zip(delta_runs)
        .map(|(prev, delta_run)| {
            if delta_run.diverged {
                return delta_run;
            }
            // The per-query update arithmetic, verbatim: previous + delta
            // fixpoint, element-wise.
            let mut updated = prev.residual().clone();
            updated.add_assign(delta_run.beliefs.residual());
            LinBpResult {
                beliefs: BeliefMatrix::from_mat(updated),
                ..delta_run
            }
        })
        .collect())
}

//! Convergence criteria for LinBP / LinBP\* / standard BP.
//!
//! * **Exact** (Lemma 8): LinBP converges iff `ρ(Ĥ⊗A − Ĥ²⊗D) < 1`;
//!   LinBP\* iff `ρ(Ĥ) < 1/ρ(A)`. Spectral radii of the `nk × nk`
//!   operators are computed matrix-free by power iteration (the operators
//!   are symmetric because `Ĥ`, `A` are symmetric and `D` is diagonal).
//! * **Sufficient** (Lemma 9): any sub-multiplicative norm bound; we take
//!   the minimum over {Frobenius, induced-1, induced-∞} as the paper
//!   recommends, plus the simpler Lemma 23 variant
//!   `‖Ĥ‖ < 1/(2‖A‖)`.
//! * **εH thresholds** (Sect. 6.2): with `Ĥ = εH·Ĥo` fixed up to scale,
//!   each criterion inverts into a maximal εH; the exact LinBP threshold
//!   needs a bisection because the echo term is quadratic in εH.
//! * **Mooij–Kappen** (Appendix G): the sufficient criterion for
//!   *standard BP*, `c(H)·ρ(A_edge) < 1`, for the comparison experiment.

use lsbp_linalg::{power_iteration, spectral_radius_dense_symmetric, Mat, PowerIterationOptions};
use lsbp_sparse::{CsrMatrix, EdgeMatrixOp};

/// Spectral radius of the LinBP update operator
/// `M = Ĥ⊗A − Ĥ²⊗D` (with echo) or `Ĥ⊗A` (without), computed matrix-free.
pub fn spectral_radius_linbp_operator(adj: &CsrMatrix, h_residual: &Mat, echo: bool) -> f64 {
    let n = adj.n_rows();
    let k = h_residual.rows();
    let h2 = h_residual.matmul(h_residual);
    let degrees = adj.squared_weight_degrees();
    let mut b = Mat::zeros(n, k);
    let mut scratch = Mat::zeros(n, k);
    let mut m = Mat::zeros(n, k);
    let mut db = Mat::zeros(n, k);
    let mut db_h2 = Mat::zeros(n, k);
    power_iteration(
        n * k,
        move |x, out| {
            // Unvec (column-stacked: x[c·n + r] = B(r,c)).
            for c in 0..k {
                for r in 0..n {
                    b[(r, c)] = x[c * n + r];
                }
            }
            // A·B·Ĥ (− D·B·Ĥ²) — every intermediate reuses a buffer
            // allocated once outside the closure.
            adj.spmm_into(&b, &mut scratch);
            scratch.matmul_into(h_residual, &mut m);
            if echo {
                b.scaled_rows_into(&degrees, &mut db);
                db.matmul_into(&h2, &mut db_h2);
                m.sub_assign(&db_h2);
            }
            for c in 0..k {
                for r in 0..n {
                    out[c * n + r] = m[(r, c)];
                }
            }
        },
        PowerIterationOptions {
            max_iter: 3000,
            tol: 1e-11,
            ..Default::default()
        },
    )
}

/// Lemma 8, Eq. 16: exact LinBP convergence test.
pub fn exact_linbp_converges(adj: &CsrMatrix, h_residual: &Mat) -> bool {
    spectral_radius_linbp_operator(adj, h_residual, true) < 1.0
}

/// Lemma 8, Eq. 17: exact LinBP\* convergence test, via
/// `ρ(Ĥ)·ρ(A) < 1` (no `nk`-dimensional work needed).
pub fn exact_linbp_star_converges(adj: &CsrMatrix, h_residual: &Mat) -> bool {
    spectral_radius_dense_symmetric(h_residual) * adj.spectral_radius() < 1.0
}

/// Exact εH threshold for LinBP\* (Eq. 17 inverted):
/// `εH < 1/(ρ(Ĥo)·ρ(A))`.
pub fn eps_max_exact_linbp_star(h_unscaled: &Mat, adj: &CsrMatrix) -> f64 {
    let rho_h = spectral_radius_dense_symmetric(h_unscaled);
    let rho_a = adj.spectral_radius();
    if rho_h == 0.0 || rho_a == 0.0 {
        f64::INFINITY
    } else {
        1.0 / (rho_h * rho_a)
    }
}

/// Exact εH threshold for LinBP (Eq. 16 inverted by bisection): the
/// largest εH with `ρ(εĤo⊗A − ε²Ĥo²⊗D) < 1`. The radius is continuous
/// and strictly increasing in εH on the relevant range, so bisection
/// converges; `rel_tol` bounds the relative bracket width (default-worthy
/// value: 1e-6).
pub fn eps_max_exact_linbp(h_unscaled: &Mat, adj: &CsrMatrix, rel_tol: f64) -> f64 {
    let rho_at = |eps: f64| {
        let h = h_unscaled.scale(eps);
        spectral_radius_linbp_operator(adj, &h, true)
    };
    // Bracket: start from the (echo-free) star bound, which is in the right
    // ballpark, then expand/shrink until ρ straddles 1.
    let mut hi = eps_max_exact_linbp_star(h_unscaled, adj);
    if !hi.is_finite() {
        return f64::INFINITY;
    }
    let mut lo = 0.0f64;
    let mut guard = 0;
    while rho_at(hi) < 1.0 {
        lo = hi;
        hi *= 2.0;
        guard += 1;
        if guard > 60 {
            return hi;
        }
    }
    while (hi - lo) > rel_tol * hi {
        let mid = 0.5 * (lo + hi);
        if rho_at(mid) < 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Minimum over the paper's norm set M = {Frobenius, induced-1,
/// induced-∞} for a sparse matrix.
fn min_norm_sparse(m: &CsrMatrix) -> f64 {
    m.frobenius_norm()
        .min(m.induced_1_norm())
        .min(m.induced_inf_norm())
}

/// Minimum over the norm set M for a dense matrix.
fn min_norm_dense(m: &Mat) -> f64 {
    lsbp_linalg::min_submultiplicative_norm(m)
}

/// Lemma 9 sufficient εH threshold for LinBP:
/// `εH·‖Ĥo‖ < (√(‖A‖² + 4‖D‖) − ‖A‖)/(2‖D‖)`, with each norm minimized
/// over M independently (as the lemma allows).
pub fn eps_max_sufficient_linbp(h_unscaled: &Mat, adj: &CsrMatrix) -> f64 {
    let norm_h = min_norm_dense(h_unscaled);
    let norm_a = min_norm_sparse(adj);
    // All three norms of the diagonal degree matrix: induced-1 = induced-∞
    // = max d; Frobenius ≥ max d. The minimum is max d.
    let norm_d = adj
        .squared_weight_degrees()
        .into_iter()
        .fold(0.0f64, f64::max);
    if norm_h == 0.0 {
        return f64::INFINITY;
    }
    if norm_d == 0.0 {
        // Edgeless graph: condition degenerates to the star case.
        return if norm_a == 0.0 {
            f64::INFINITY
        } else {
            1.0 / (norm_h * norm_a)
        };
    }
    let bound = ((norm_a * norm_a + 4.0 * norm_d).sqrt() - norm_a) / (2.0 * norm_d);
    bound / norm_h
}

/// Lemma 9 sufficient εH threshold for LinBP\*: `εH < 1/(‖Ĥo‖·‖A‖)`.
pub fn eps_max_sufficient_linbp_star(h_unscaled: &Mat, adj: &CsrMatrix) -> f64 {
    let norm_h = min_norm_dense(h_unscaled);
    let norm_a = min_norm_sparse(adj);
    if norm_h == 0.0 || norm_a == 0.0 {
        f64::INFINITY
    } else {
        1.0 / (norm_h * norm_a)
    }
}

/// Lemma 23's simpler (but looser) sufficient εH threshold for LinBP:
/// `εH·‖Ĥo‖ < 1/(2‖A‖)`, using only the induced 1-/∞-norms.
pub fn eps_max_lemma23(h_unscaled: &Mat, adj: &CsrMatrix) -> f64 {
    let norm_h =
        lsbp_linalg::induced_1_norm(h_unscaled).min(lsbp_linalg::induced_inf_norm(h_unscaled));
    let norm_a = adj.induced_1_norm().min(adj.induced_inf_norm());
    if norm_h == 0.0 || norm_a == 0.0 {
        f64::INFINITY
    } else {
        1.0 / (2.0 * norm_h * norm_a)
    }
}

/// The constant `c(H)` of the Mooij–Kappen bound (Appendix G):
/// `max_{c1≠c2} max_{d1≠d2} tanh(¼·|log (H(c1,d1)·H(c2,d2)) /
/// (H(c2,d1)·H(c1,d2))|)`. A zero entry anywhere in a compared quadruple
/// makes the log-odds infinite, i.e. `c(H) = 1`.
pub fn mooij_constant(h_raw: &Mat) -> f64 {
    let k = h_raw.rows();
    assert!(h_raw.is_square(), "c(H) of a square matrix");
    let mut c = 0.0f64;
    for c1 in 0..k {
        for c2 in 0..k {
            if c1 == c2 {
                continue;
            }
            for d1 in 0..k {
                for d2 in 0..k {
                    if d1 == d2 {
                        continue;
                    }
                    let num = h_raw[(c1, d1)] * h_raw[(c2, d2)];
                    let den = h_raw[(c2, d1)] * h_raw[(c1, d2)];
                    let v = if num <= 0.0 || den <= 0.0 {
                        1.0
                    } else {
                        (0.25 * (num / den).ln().abs()).tanh()
                    };
                    c = c.max(v);
                }
            }
        }
    }
    c
}

/// Spectral radius of the edge matrix `A_edge` (Appendix G), matrix-free.
pub fn rho_edge_matrix(adj: &CsrMatrix) -> f64 {
    EdgeMatrixOp::new(adj).spectral_radius()
}

/// The Mooij–Kappen sufficient criterion for convergence of *standard BP*:
/// `c(H)·ρ(A_edge) < 1`.
pub fn mooij_guarantees_bp_convergence(h_raw: &Mat, adj: &CsrMatrix) -> bool {
    mooij_constant(h_raw) * rho_edge_matrix(adj) < 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coupling::CouplingMatrix;
    use lsbp_graph::generators::{complete, cycle, fig5c_torus, path, star};

    /// Matrix-free operator radius equals the dense Kronecker computation.
    #[test]
    fn operator_radius_matches_dense() {
        let adj = cycle(5).adjacency();
        let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.3);
        let rho_free = spectral_radius_linbp_operator(&adj, &h, true);
        // Dense: Ĥ⊗A − Ĥ²⊗D.
        let a = adj.to_dense();
        let degrees = adj.squared_weight_degrees();
        let d = Mat::from_fn(5, 5, |r, c| if r == c { degrees[r] } else { 0.0 });
        let m = h.kronecker(&a).sub(&h.matmul(&h).kronecker(&d));
        let rho_dense = spectral_radius_dense_symmetric(&m);
        assert!(
            (rho_free - rho_dense).abs() < 1e-6,
            "{rho_free} vs {rho_dense}"
        );
    }

    /// Without echo: ρ(Ĥ⊗A) = ρ(Ĥ)·ρ(A) — separable.
    #[test]
    fn star_radius_is_separable() {
        let adj = star(7).adjacency();
        let h = CouplingMatrix::fig1a().unwrap().scaled_residual(0.4);
        let rho_free = spectral_radius_linbp_operator(&adj, &h, false);
        let expect = spectral_radius_dense_symmetric(&h) * adj.spectral_radius();
        assert!((rho_free - expect).abs() < 1e-6);
    }

    /// Example 20: LinBP* threshold εH ≈ 0.658 on the torus with Ĥo from
    /// Fig. 1c (ρ(Ĥo) ≈ 0.629, ρ(A) = 1 + √2).
    #[test]
    fn example20_star_threshold() {
        let adj = fig5c_torus().adjacency();
        let ho = CouplingMatrix::fig1c().unwrap().residual();
        let eps = eps_max_exact_linbp_star(&ho, &adj);
        assert!((eps - 0.658).abs() < 0.002, "eps = {eps}");
    }

    /// Example 20: exact LinBP threshold εH ≈ 0.488.
    #[test]
    fn example20_linbp_threshold() {
        let adj = fig5c_torus().adjacency();
        let ho = CouplingMatrix::fig1c().unwrap().residual();
        let eps = eps_max_exact_linbp(&ho, &adj, 1e-5);
        assert!((eps - 0.488).abs() < 0.002, "eps = {eps}");
    }

    /// Example 20: the norm-based sufficient conditions
    /// εH ≈ 0.360 (LinBP) and εH ≈ 0.455 (LinBP*).
    #[test]
    fn example20_sufficient_thresholds() {
        let adj = fig5c_torus().adjacency();
        let ho = CouplingMatrix::fig1c().unwrap().residual();
        let suff_linbp = eps_max_sufficient_linbp(&ho, &adj);
        let suff_star = eps_max_sufficient_linbp_star(&ho, &adj);
        assert!((suff_linbp - 0.360).abs() < 0.005, "linbp = {suff_linbp}");
        assert!((suff_star - 0.455).abs() < 0.005, "star = {suff_star}");
        // Sufficient ≤ exact, always.
        assert!(suff_linbp <= eps_max_exact_linbp(&ho, &adj, 1e-4) + 1e-9);
        assert!(suff_star <= eps_max_exact_linbp_star(&ho, &adj) + 1e-9);
    }

    /// Lemma 23 is looser than Lemma 9 but still sufficient.
    #[test]
    fn lemma23_is_looser() {
        let adj = fig5c_torus().adjacency();
        let ho = CouplingMatrix::fig1c().unwrap().residual();
        let l23 = eps_max_lemma23(&ho, &adj);
        let l9 = eps_max_sufficient_linbp(&ho, &adj);
        assert!(
            l23 <= l9 + 1e-12,
            "lemma 23 ({l23}) should not beat lemma 9 ({l9})"
        );
        // And it is still below the exact threshold.
        assert!(l23 < 0.488);
    }

    /// The convergence predicates agree with the thresholds on both sides.
    #[test]
    fn predicates_bracket_thresholds() {
        let adj = fig5c_torus().adjacency();
        let coupling = CouplingMatrix::fig1c().unwrap();
        let below = coupling.scaled_residual(0.45);
        let above = coupling.scaled_residual(0.52);
        assert!(exact_linbp_converges(&adj, &below));
        assert!(!exact_linbp_converges(&adj, &above));
        let below_star = coupling.scaled_residual(0.64);
        let above_star = coupling.scaled_residual(0.68);
        assert!(exact_linbp_star_converges(&adj, &below_star));
        assert!(!exact_linbp_star_converges(&adj, &above_star));
    }

    /// c(H) = 0 for the uniform matrix (no information → BP trivially
    /// converges) and grows with coupling strength.
    #[test]
    fn mooij_constant_properties() {
        let uniform = Mat::from_fn(3, 3, |_, _| 1.0 / 3.0);
        assert!(mooij_constant(&uniform) < 1e-12);
        let weak = CouplingMatrix::fig1c().unwrap().raw_at_scale(0.05);
        let strong = CouplingMatrix::fig1c().unwrap().raw_at_scale(0.3);
        assert!(mooij_constant(&weak) < mooij_constant(&strong));
        // Zero entries (fig1c at scale 1 has H(1,1) = 0) → c = 1.
        let degenerate = CouplingMatrix::fig1c().unwrap();
        assert!((mooij_constant(degenerate.raw()) - 1.0).abs() < 1e-12);
    }

    /// Appendix G's empirical remark: ρ(A_edge) + 1 ≈ ρ(A) for graphs with
    /// high-degree nodes; exact equality for complete graphs.
    #[test]
    fn edge_radius_vs_adjacency_radius() {
        let adj = complete(6).adjacency();
        let re = rho_edge_matrix(&adj);
        let ra = adj.spectral_radius();
        assert!((re + 1.0 - ra).abs() < 1e-4, "re={re} ra={ra}");
    }

    /// On a tree (path), BP always converges: ρ(A_edge) = 0 makes the
    /// Mooij criterion hold for every positive H.
    #[test]
    fn mooij_on_tree_always_converges() {
        let adj = path(6).adjacency();
        let h = CouplingMatrix::fig1a().unwrap();
        assert!(mooij_guarantees_bp_convergence(h.raw(), &adj));
    }

    /// Appendix G's punchline: neither bound subsumes the other.
    ///
    /// Direction 1 — sparse graph, strong binary coupling: ρ(A_edge) < ρ(A),
    /// so Mooij certifies BP where LinBP* diverges.
    /// Direction 2 — dense graph, multi-class coupling: c(H) > ρ(Ĥ) makes
    /// our exact criterion admit scales Mooij cannot certify.
    #[test]
    fn neither_bound_subsumes() {
        // Direction 1: cycle C8, fig1a at full strength. ρ(A_edge) = 1 and
        // c(H) = tanh(¼·ln(0.64/0.04)) ≈ 0.6 < 1 → Mooij certifies BP; but
        // ρ(Ĥ)·ρ(A) = 0.6 · 2 = 1.2 → LinBP* diverges.
        let ring = cycle(8).adjacency();
        let binary = CouplingMatrix::fig1a().unwrap();
        assert!(mooij_guarantees_bp_convergence(binary.raw(), &ring));
        assert!(!exact_linbp_star_converges(&ring, &binary.residual()));

        // Direction 2: complete graph K6, fig1c multi-class coupling.
        // Appendix G compares Eq. 34 against the LinBP* criterion (Eq. 17):
        // in multi-class settings c(H) > ρ(Ĥ) (here ≈ 0.88ε vs 0.63ε), and
        // high-degree nodes make ρ(A_edge) = ρ(A) − 1 nearly as large as
        // ρ(A); at εH = 0.3, ρ(Ĥ)·ρ(A) ≈ 0.94 < 1 while
        // c(H)·ρ(A_edge) ≈ 1.03 > 1.
        let dense = complete(6).adjacency();
        let coupling = CouplingMatrix::fig1c().unwrap();
        let eps = 0.3;
        assert!(exact_linbp_star_converges(
            &dense,
            &coupling.scaled_residual(eps)
        ));
        assert!(!mooij_guarantees_bp_convergence(
            &coupling.raw_at_scale(eps),
            &dense
        ));
    }
}

//! Classification-quality metrics (Sect. 7, "Measuring classification
//! quality").
//!
//! Top-belief assignments are *sets* per node (ties allowed). Given a
//! ground-truth method GT and a comparison method O with belief sets
//! `B_GT` and `B_O` over all (node, class) pairs:
//!
//! * recall `r = |B_GT ∩ B_O| / |B_GT|`,
//! * precision `p = |B_GT ∩ B_O| / |B_O|`,
//! * "accuracy" (the paper's term) = F1 = harmonic mean of p and r.
//!
//! This set semantics naturally penalizes spurious ties (they hurt
//! precision) and missed ties (they hurt recall) — the exact effect
//! discussed around Fig. 7g.

/// A precision/recall/F1 triple.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QualityReport {
    /// Portion of ground-truth top beliefs recovered.
    pub recall: f64,
    /// Portion of reported top beliefs that are correct.
    pub precision: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

fn intersection_size(a: &[usize], b: &[usize]) -> usize {
    // Top-belief sets are tiny (≤ k) and sorted ascending by construction.
    let mut count = 0;
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Precision and recall of `other` against `ground_truth` (per-node top
/// belief sets; both from [`crate::beliefs::BeliefMatrix::top_belief_assignment`]).
///
/// # Panics
/// Panics if the two assignments cover different node counts.
pub fn precision_recall(ground_truth: &[Vec<usize>], other: &[Vec<usize>]) -> (f64, f64) {
    assert_eq!(
        ground_truth.len(),
        other.len(),
        "assignments over different node sets"
    );
    let mut inter = 0usize;
    let mut gt_total = 0usize;
    let mut other_total = 0usize;
    for (g, o) in ground_truth.iter().zip(other) {
        inter += intersection_size(g, o);
        gt_total += g.len();
        other_total += o.len();
    }
    let recall = if gt_total == 0 {
        1.0
    } else {
        inter as f64 / gt_total as f64
    };
    let precision = if other_total == 0 {
        1.0
    } else {
        inter as f64 / other_total as f64
    };
    (precision, recall)
}

/// Like [`precision_recall`] but restricted to nodes where `mask` is true
/// (e.g. only unlabeled nodes).
pub fn precision_recall_masked(
    ground_truth: &[Vec<usize>],
    other: &[Vec<usize>],
    mask: &[bool],
) -> (f64, f64) {
    assert_eq!(
        ground_truth.len(),
        other.len(),
        "assignments over different node sets"
    );
    assert_eq!(
        ground_truth.len(),
        mask.len(),
        "mask over different node set"
    );
    let gt: Vec<Vec<usize>> = ground_truth
        .iter()
        .zip(mask)
        .filter(|(_, &m)| m)
        .map(|(g, _)| g.clone())
        .collect();
    let ot: Vec<Vec<usize>> = other
        .iter()
        .zip(mask)
        .filter(|(_, &m)| m)
        .map(|(o, _)| o.clone())
        .collect();
    precision_recall(&gt, &ot)
}

/// Harmonic mean of precision and recall.
pub fn f1_score(precision: f64, recall: f64) -> f64 {
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

/// The paper's "overall accuracy": F1 of `other` against `ground_truth`.
pub fn accuracy(ground_truth: &[Vec<usize>], other: &[Vec<usize>]) -> f64 {
    let (p, r) = precision_recall(ground_truth, other);
    f1_score(p, r)
}

/// Convenience: full report in one call.
pub fn quality(ground_truth: &[Vec<usize>], other: &[Vec<usize>]) -> QualityReport {
    let (precision, recall) = precision_recall(ground_truth, other);
    QualityReport {
        precision,
        recall,
        f1: f1_score(precision, recall),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from Sect. 7: GT assigns {c1},{c2},{c3} to three
    /// nodes; the comparison method assigns {c1,c2},{c2},{c2}; then
    /// r = 2/3 and p = 2/4.
    #[test]
    fn paper_worked_example() {
        let gt = vec![vec![0], vec![1], vec![2]];
        let other = vec![vec![0, 1], vec![1], vec![1]];
        let (p, r) = precision_recall(&gt, &other);
        assert!((r - 2.0 / 3.0).abs() < 1e-12);
        assert!((p - 2.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_agreement() {
        let a = vec![vec![0], vec![1, 2], vec![2]];
        let (p, r) = precision_recall(&a, &a.clone());
        assert_eq!((p, r), (1.0, 1.0));
        assert_eq!(accuracy(&a, &a.clone()), 1.0);
    }

    #[test]
    fn total_disagreement() {
        let gt = vec![vec![0], vec![0]];
        let other = vec![vec![1], vec![1]];
        let (p, r) = precision_recall(&gt, &other);
        assert_eq!((p, r), (0.0, 0.0));
        assert_eq!(f1_score(p, r), 0.0);
    }

    #[test]
    fn ties_hurt_precision_not_recall() {
        let gt = vec![vec![0]; 4];
        let tied = vec![vec![0, 1]; 4];
        let (p, r) = precision_recall(&gt, &tied);
        assert_eq!(r, 1.0);
        assert_eq!(p, 0.5);
        let f1 = f1_score(p, r);
        assert!((f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn masked_restriction() {
        let gt = vec![vec![0], vec![1], vec![2]];
        let other = vec![vec![1], vec![1], vec![1]]; // only node 1 agrees
        let mask = vec![false, true, false];
        let (p, r) = precision_recall_masked(&gt, &other, &mask);
        assert_eq!((p, r), (1.0, 1.0));
    }

    #[test]
    fn empty_inputs() {
        let (p, r) = precision_recall(&[], &[]);
        assert_eq!((p, r), (1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "different node sets")]
    fn mismatched_lengths_panic() {
        let _ = precision_recall(&[vec![0]], &[]);
    }

    #[test]
    fn intersection_of_sorted_sets() {
        assert_eq!(intersection_size(&[0, 2, 5], &[1, 2, 5]), 2);
        assert_eq!(intersection_size(&[], &[1]), 0);
        assert_eq!(intersection_size(&[3], &[3]), 1);
    }
}

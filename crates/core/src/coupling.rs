//! Coupling ("heterophily") matrices — Fig. 1 and Sect. 2 of the paper.
//!
//! A coupling matrix `H` is `k × k`, **doubly stochastic** (every row and
//! column sums to 1 — required by the linearization) and **symmetric**
//! (follows from undirected edges). `H(j, i)` is the relative influence of
//! class `j` of a node on class `i` of its neighbor.
//!
//! The linearized algorithms work with the *residual* matrix
//! `Ĥ = H − 1/k` (centered around 1/k, Definition 3) and its scalings
//! `Ĥ = εH · Ĥo` (Sect. 6.2): the relative structure `Ĥo` is fixed while
//! the absolute scale `εH` controls convergence and the SBP limit.

use lsbp_linalg::Mat;

/// Validation errors for coupling matrices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CouplingError {
    /// The matrix is not square or is empty.
    NotSquare,
    /// A row or column does not sum to 1 (raw form) or 0 (residual form).
    NotStochastic,
    /// The matrix is not symmetric.
    NotSymmetric,
}

impl std::fmt::Display for CouplingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CouplingError::NotSquare => write!(f, "coupling matrix must be square and non-empty"),
            CouplingError::NotStochastic => {
                write!(
                    f,
                    "coupling matrix must be doubly stochastic (rows/columns sum to 1)"
                )
            }
            CouplingError::NotSymmetric => write!(f, "coupling matrix must be symmetric"),
        }
    }
}

impl std::error::Error for CouplingError {}

const STOCHASTIC_TOL: f64 = 1e-9;

/// A validated coupling matrix, stored in raw (doubly stochastic) form.
#[derive(Clone, Debug, PartialEq)]
pub struct CouplingMatrix {
    raw: Mat,
}

impl CouplingMatrix {
    /// Validates and wraps a raw doubly-stochastic symmetric matrix.
    pub fn new(raw: Mat) -> Result<Self, CouplingError> {
        if !raw.is_square() || raw.rows() == 0 {
            return Err(CouplingError::NotSquare);
        }
        let k = raw.rows();
        for r in 0..k {
            if (raw.row(r).iter().sum::<f64>() - 1.0).abs() > STOCHASTIC_TOL {
                return Err(CouplingError::NotStochastic);
            }
        }
        for c in 0..k {
            if (raw.col(c).iter().sum::<f64>() - 1.0).abs() > STOCHASTIC_TOL {
                return Err(CouplingError::NotStochastic);
            }
        }
        if !raw.is_symmetric(STOCHASTIC_TOL) {
            return Err(CouplingError::NotSymmetric);
        }
        Ok(Self { raw })
    }

    /// Builds a coupling matrix from an *unscaled residual* matrix `Ĥo`
    /// (rows/columns summing to 0, symmetric) at scale `eps`:
    /// `H = 1/k + eps · Ĥo`. Fails if the result would not be a valid raw
    /// coupling matrix (e.g. rows not summing to 0).
    pub fn from_residual(residual: &Mat, eps: f64) -> Result<Self, CouplingError> {
        if !residual.is_square() || residual.rows() == 0 {
            return Err(CouplingError::NotSquare);
        }
        let k = residual.rows();
        for r in 0..k {
            if residual.row(r).iter().sum::<f64>().abs() > STOCHASTIC_TOL {
                return Err(CouplingError::NotStochastic);
            }
        }
        let raw = Mat::from_fn(k, k, |r, c| 1.0 / k as f64 + eps * residual[(r, c)]);
        Self::new(raw)
    }

    /// Number of classes `k`.
    pub fn k(&self) -> usize {
        self.raw.rows()
    }

    /// The raw doubly-stochastic matrix `H`.
    pub fn raw(&self) -> &Mat {
        &self.raw
    }

    /// The residual matrix `Ĥ = H − 1/k` (Definition 3).
    pub fn residual(&self) -> Mat {
        let k = self.k() as f64;
        Mat::from_fn(self.k(), self.k(), |r, c| self.raw[(r, c)] - 1.0 / k)
    }

    /// The scaled residual `εH · Ĥ` used to sweep coupling strength
    /// (Sect. 6.2). With this convention `self` plays the role of the
    /// *unscaled* matrix: `scaled_residual(1.0) == residual()`.
    pub fn scaled_residual(&self, eps: f64) -> Mat {
        self.residual().scale(eps)
    }

    /// The raw coupling matrix at residual scale `eps`:
    /// `H(ε) = 1/k + ε·Ĥ`. This is what standard BP consumes when sweeping
    /// εH. Entries can leave `[0, 1]` for large `eps`; BP requires
    /// positivity, so callers should respect [`CouplingMatrix::max_positive_eps`].
    pub fn raw_at_scale(&self, eps: f64) -> Mat {
        let k = self.k() as f64;
        let res = self.residual();
        Mat::from_fn(self.k(), self.k(), |r, c| 1.0 / k + eps * res[(r, c)])
    }

    /// Largest `eps` keeping every entry of `raw_at_scale(eps)` strictly
    /// positive (BP's potentials must be positive).
    pub fn max_positive_eps(&self) -> f64 {
        let k = self.k() as f64;
        let res = self.residual();
        let mut worst = f64::INFINITY;
        for r in 0..self.k() {
            for c in 0..self.k() {
                let h = res[(r, c)];
                if h < 0.0 {
                    worst = worst.min((1.0 / k) / (-h));
                }
            }
        }
        worst
    }

    // ---------------------------------------------------------------
    // Presets from the paper.
    // ---------------------------------------------------------------

    /// Fig. 1a: binary homophily (Democrats/Republicans),
    /// `[[0.8, 0.2], [0.2, 0.8]]`.
    pub fn fig1a() -> Result<Self, CouplingError> {
        Self::new(Mat::from_rows(&[&[0.8, 0.2], &[0.2, 0.8]]))
    }

    /// Fig. 1b: binary heterophily (Talkative/Silent),
    /// `[[0.3, 0.7], [0.7, 0.3]]`.
    pub fn fig1b() -> Result<Self, CouplingError> {
        Self::new(Mat::from_rows(&[&[0.3, 0.7], &[0.7, 0.3]]))
    }

    /// Fig. 1c: the general 3-class case (Honest/Accomplice/Fraudster),
    /// `[[0.6, 0.3, 0.1], [0.3, 0.0, 0.7], [0.1, 0.7, 0.2]]` — mixes
    /// homophily (H–H) with heterophily (A–F).
    pub fn fig1c() -> Result<Self, CouplingError> {
        Self::new(Mat::from_rows(&[
            &[0.6, 0.3, 0.1],
            &[0.3, 0.0, 0.7],
            &[0.1, 0.7, 0.2],
        ]))
    }

    /// `k`-class homophily: diagonal `p`, off-diagonal `(1−p)/(k−1)`.
    ///
    /// # Panics
    /// Panics unless `k ≥ 2` and `p ∈ (1/k, 1]` (below 1/k it would be
    /// heterophily; use [`CouplingMatrix::heterophily`]).
    pub fn homophily(k: usize, p: f64) -> Result<Self, CouplingError> {
        assert!(k >= 2, "homophily needs at least two classes");
        assert!(p > 1.0 / k as f64 && p <= 1.0, "diagonal must exceed 1/k");
        let off = (1.0 - p) / (k as f64 - 1.0);
        Self::new(Mat::from_fn(k, k, |r, c| if r == c { p } else { off }))
    }

    /// `k`-class heterophily: diagonal `p < 1/k`, off-diagonal
    /// `(1−p)/(k−1)`.
    ///
    /// # Panics
    /// Panics unless `k ≥ 2` and `p ∈ [0, 1/k)`.
    pub fn heterophily(k: usize, p: f64) -> Result<Self, CouplingError> {
        assert!(k >= 2, "heterophily needs at least two classes");
        assert!(
            (0.0..1.0 / k as f64).contains(&p),
            "diagonal must be below 1/k"
        );
        let off = (1.0 - p) / (k as f64 - 1.0);
        Self::new(Mat::from_fn(k, k, |r, c| if r == c { p } else { off }))
    }

    /// The unscaled residual matrix `Ĥo` of Fig. 6b (the synthetic-data
    /// experiments): `[[10, −4, −6], [−4, 7, −3], [−6, −3, 9]]`.
    /// Returned as a residual (rows sum to 0); pair with
    /// [`CouplingMatrix::from_residual`] / εH-scaling as the experiments do.
    pub fn fig6b_residual() -> Mat {
        Mat::from_rows(&[&[10.0, -4.0, -6.0], &[-4.0, 7.0, -3.0], &[-6.0, -3.0, 9.0]])
    }

    /// The unscaled residual matrix of Fig. 11a (the DBLP experiment):
    /// 4-class homophily `diag 6, off −2`.
    pub fn fig11a_residual() -> Mat {
        Mat::from_fn(4, 4, |r, c| if r == c { 6.0 } else { -2.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for m in [
            CouplingMatrix::fig1a(),
            CouplingMatrix::fig1b(),
            CouplingMatrix::fig1c(),
        ] {
            assert!(m.is_ok());
        }
        assert_eq!(CouplingMatrix::fig1c().unwrap().k(), 3);
    }

    #[test]
    fn residual_rows_and_cols_sum_to_zero() {
        let h = CouplingMatrix::fig1c().unwrap();
        let res = h.residual();
        for r in 0..3 {
            assert!(res.row(r).iter().sum::<f64>().abs() < 1e-12);
            assert!(res.col(r).iter().sum::<f64>().abs() < 1e-12);
        }
        // Example 20: Ĥo(0,0) = 0.6 − 1/3.
        assert!((res[(0, 0)] - (0.6 - 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_stochastic() {
        let m = Mat::from_rows(&[&[0.9, 0.2], &[0.2, 0.8]]);
        assert_eq!(CouplingMatrix::new(m), Err(CouplingError::NotStochastic));
    }

    #[test]
    fn rejects_asymmetric() {
        // Doubly stochastic but not symmetric.
        let m = Mat::from_rows(&[&[0.5, 0.3, 0.2], &[0.2, 0.5, 0.3], &[0.3, 0.2, 0.5]]);
        assert_eq!(CouplingMatrix::new(m), Err(CouplingError::NotSymmetric));
    }

    #[test]
    fn rejects_non_square() {
        assert_eq!(
            CouplingMatrix::new(Mat::zeros(2, 3)),
            Err(CouplingError::NotSquare)
        );
        assert_eq!(
            CouplingMatrix::new(Mat::zeros(0, 0)),
            Err(CouplingError::NotSquare)
        );
    }

    #[test]
    fn scaled_residual_scales_linearly() {
        let h = CouplingMatrix::fig1a().unwrap();
        let r1 = h.scaled_residual(1.0);
        let r2 = h.scaled_residual(0.5);
        assert!((r1[(0, 0)] - 0.3).abs() < 1e-12);
        assert!((r2[(0, 0)] - 0.15).abs() < 1e-12);
    }

    #[test]
    fn from_residual_round_trip() {
        let ho = CouplingMatrix::fig6b_residual();
        let eps = 0.01;
        let h = CouplingMatrix::from_residual(&ho, eps).unwrap();
        let back = h.residual();
        let expect = ho.scale(eps);
        assert!(back.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn from_residual_rejects_uncentered() {
        let bad = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(
            CouplingMatrix::from_residual(&bad, 0.1),
            Err(CouplingError::NotStochastic)
        );
    }

    #[test]
    fn homophily_heterophily_builders() {
        let hom = CouplingMatrix::homophily(4, 0.7).unwrap();
        assert!((hom.raw()[(0, 0)] - 0.7).abs() < 1e-12);
        assert!((hom.raw()[(0, 1)] - 0.1).abs() < 1e-12);
        let het = CouplingMatrix::heterophily(2, 0.3).unwrap();
        assert_eq!(het.raw(), CouplingMatrix::fig1b().unwrap().raw());
    }

    #[test]
    fn max_positive_eps_fig6b() {
        let h = CouplingMatrix::from_residual(&CouplingMatrix::fig6b_residual(), 0.001).unwrap();
        // Residual at eps has entries 0.001·(−6) = −0.006; positivity bound
        // of the *unit-scale* residual: (1/3)/6 ≈ 0.0556 relative to Ĥo.
        let unit = CouplingMatrix::from_residual(&CouplingMatrix::fig6b_residual(), 0.01).unwrap();
        let eps_max = unit.max_positive_eps();
        assert!(eps_max > 0.0);
        // fig1c: most negative residual is 0.0 − 1/3 → eps_max = 1.
        let fig1c = CouplingMatrix::fig1c().unwrap();
        assert!((fig1c.max_positive_eps() - 1.0).abs() < 1e-9);
        let _ = h;
    }

    #[test]
    fn fig11a_residual_centered() {
        let m = CouplingMatrix::fig11a_residual();
        for r in 0..4 {
            assert!(m.row(r).iter().sum::<f64>().abs() < 1e-12);
        }
    }
}

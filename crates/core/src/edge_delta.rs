//! Incremental LinBP maintenance under **edge-weight** changes.
//!
//! [`crate::linbp::linbp_update`] (Proposition 7, linearity in `Ê`)
//! handles changed *explicit beliefs*. This module extends the same idea
//! to changed *adjacency*: for an additive edge change `A → A' = A + ΔA`
//! with held-fixed explicit beliefs, the already-solved beliefs `B̂` (the
//! fixpoint of `B̂ = Ê + A·B̂·Ĥ − D·B̂·Ĥ²`) can be **patched** to the new
//! graph by one sparse delta solve instead of a from-scratch run.
//!
//! Writing the new solution as `B̂' = B̂ + Δ` and subtracting the old
//! fixpoint identity from the new one gives a LinBP system *in Δ* over
//! the **new** adjacency:
//!
//! ```text
//! Δ = Ê_Δ + A'·Δ·Ĥ − D'·Δ·Ĥ²      with
//! Ê_Δ = (ΔA)·B̂·Ĥ − (ΔD)·B̂·Ĥ²,    ΔD = D' − D
//! ```
//!
//! so the patch is exactly `linbp_update` with the synthetic seed `Ê_Δ`
//! solved against `A'`. `Ê_Δ` is nonzero only on the rows touched by a
//! delta (its source endpoints), and each of its rows is analytically
//! centered: `B̂·Ĥ` rows sum to zero because the residual coupling's rows
//! do (Definition 3), so `Ê_Δ` is a legal [`ExplicitBeliefs`].
//!
//! **Determinism boundary** (documented in the ROADMAP): the patched
//! beliefs are bitwise reproducible — the same `(B̂, deltas)` always
//! produce the same `Ê_Δ` and hence the same patched result — but they
//! are *not* bitwise equal to a from-scratch solve on `A'`; both sit
//! within solver tolerance of the exact new fixpoint. The equality that
//! *is* exact (and tested) is: serving-layer patching ==
//! `linbp_edge_delta_seed` + `linbp_update` called as library functions.

use crate::beliefs::{BeliefMatrix, ExplicitBeliefs};
use crate::linbp::LinBpError;
use lsbp_linalg::Mat;
use lsbp_sparse::CsrMatrix;
use std::collections::BTreeMap;

/// Builds the synthetic explicit-belief seed `Ê_Δ = (ΔA)·B̂·Ĥ − (ΔD)·B̂·Ĥ²`
/// for patching `previous` beliefs across the additive edge-weight
/// `deltas` (entries `(src, dst, δw)`, duplicates summed; pass both
/// directions for an undirected change). `old_adj` must be the adjacency
/// the `previous` beliefs were solved on — it supplies the old weights in
/// `ΔD_s = Σ_t (w_st + δ_st)² − w_st²`. With `echo = false` (LinBP\*) the
/// `ΔD` term is dropped, matching Eq. 7.
///
/// Solving the returned seed with [`crate::linbp::linbp_update`] (or the
/// batched variants) **against the new adjacency** yields the patched
/// beliefs; see the module docs for the derivation and the determinism
/// boundary. Cost: `O(|deltas| · k²)` — independent of `n` and `nnz`.
pub fn linbp_edge_delta_seed(
    old_adj: &CsrMatrix,
    deltas: &[(usize, usize, f64)],
    previous: &BeliefMatrix,
    h_residual: &Mat,
    echo: bool,
) -> Result<ExplicitBeliefs, LinBpError> {
    let n = old_adj.n_rows();
    let k = h_residual.rows();
    if old_adj.n_cols() != n || previous.n() != n {
        return Err(LinBpError::DimensionMismatch);
    }
    if h_residual.cols() != k || previous.k() != k {
        return Err(LinBpError::CouplingArityMismatch);
    }
    for &(s, t, _) in deltas {
        if s >= n || t >= n {
            return Err(LinBpError::DimensionMismatch);
        }
    }

    // Coalesce duplicate coordinates (sum in arrival order), then iterate
    // in sorted order so the accumulation is independent of delta order.
    let mut summed: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for &(s, t, d) in deltas {
        *summed.entry((s, t)).or_insert(0.0) += d;
    }

    let b = previous.residual();
    let h2 = if echo {
        Some(h_residual.matmul(h_residual))
    } else {
        None
    };

    // row_t(B̂)·M for the two coupling powers, cached per node.
    let mut bh_cache: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    let mut bh2_cache: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    let row_times = |cache: &mut BTreeMap<usize, Vec<f64>>, m: &Mat, v: usize| -> Vec<f64> {
        cache
            .entry(v)
            .or_insert_with(|| {
                let row = b.row(v);
                (0..k)
                    .map(|c| (0..k).map(|d| row[d] * m[(d, c)]).sum())
                    .collect()
            })
            .clone()
    };

    // Ê_Δ row s  +=  δ_st · row_t(B̂)·Ĥ   for every touched (s, t).
    let mut seed_rows: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    let mut dd: BTreeMap<usize, f64> = BTreeMap::new();
    for (&(s, t), &d) in &summed {
        if d == 0.0 {
            continue;
        }
        let p = row_times(&mut bh_cache, h_residual, t);
        let row = seed_rows.entry(s).or_insert_with(|| vec![0.0; k]);
        for (dst, &x) in row.iter_mut().zip(&p) {
            *dst += d * x;
        }
        if echo {
            let w = old_adj.get(s, t);
            *dd.entry(s).or_insert(0.0) += (w + d) * (w + d) - w * w;
        }
    }
    // Ê_Δ row s  −=  ΔD_s · row_s(B̂)·Ĥ²   (echo cancellation re-weighting).
    if let Some(h2) = &h2 {
        for (&s, &dd_s) in &dd {
            if dd_s == 0.0 {
                continue;
            }
            let q = row_times(&mut bh2_cache, h2, s);
            let row = seed_rows.entry(s).or_insert_with(|| vec![0.0; k]);
            for (dst, &x) in row.iter_mut().zip(&q) {
                *dst -= dd_s * x;
            }
        }
    }

    let mut seed = ExplicitBeliefs::new(n, k);
    for (s, mut row) in seed_rows {
        // Analytically centered; remove the accumulated rounding residue
        // (≈ machine epsilon relative) so the row passes the residual
        // check regardless of belief magnitudes.
        let mean: f64 = row.iter().sum::<f64>() / k as f64;
        row.iter_mut().for_each(|x| *x -= mean);
        seed.set_residual(s, &row)
            .expect("edge-delta seed rows are centered by construction");
    }
    Ok(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coupling::CouplingMatrix;
    use crate::linbp::{linbp, linbp_star, linbp_update, LinBpOptions};
    use lsbp_graph::Graph;

    fn fixture() -> (CsrMatrix, ExplicitBeliefs, Mat) {
        let mut g = Graph::new(8);
        for &(a, b) in &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 7),
            (7, 0),
            (1, 5),
        ] {
            g.add_edge(a, b, 1.0);
        }
        let adj = g.adjacency();
        let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.05);
        let mut e = ExplicitBeliefs::new(8, 3);
        e.set_label(0, 0, 1.0).unwrap();
        e.set_label(3, 1, 1.0).unwrap();
        e.set_label(6, 2, 1.0).unwrap();
        (adj, e, h)
    }

    /// The patched beliefs agree with a from-scratch solve on the new
    /// adjacency to solver tolerance (they are not bitwise equal — that
    /// is the documented determinism boundary).
    #[test]
    fn patch_tracks_full_resolve() {
        for echo in [true, false] {
            let (adj, e, h) = fixture();
            let opts = LinBpOptions {
                tol: 1e-14,
                ..LinBpOptions::default()
            };
            let run = |a: &CsrMatrix, e: &ExplicitBeliefs| {
                if echo {
                    linbp(a, e, &h, &opts).unwrap()
                } else {
                    linbp_star(a, e, &h, &opts).unwrap()
                }
            };
            let old = run(&adj, &e);
            assert!(old.converged);

            // Re-weight one edge, add a brand-new one, both directions.
            let deltas = [
                (1usize, 2usize, 0.5),
                (2, 1, 0.5),
                (0, 4, 0.75),
                (4, 0, 0.75),
            ];
            let new_adj = adj.try_with_edge_deltas(&deltas).unwrap();

            let seed = linbp_edge_delta_seed(&adj, &deltas, &old.beliefs, &h, echo).unwrap();
            let patched = linbp_update(&new_adj, &old.beliefs, &seed, &h, &opts, echo).unwrap();
            let fresh = run(&new_adj, &e);
            assert!(patched.converged && fresh.converged);
            let diff = patched
                .beliefs
                .residual()
                .max_abs_diff(fresh.beliefs.residual());
            assert!(diff < 1e-10, "echo={echo}: patched vs fresh diff {diff}");
            // The patch genuinely moved the beliefs.
            assert!(
                old.beliefs
                    .residual()
                    .max_abs_diff(fresh.beliefs.residual())
                    > 1e-6,
                "fixture deltas must change the solution"
            );
        }
    }

    /// The seed touches only delta endpoints and is exactly centered.
    #[test]
    fn seed_support_and_centering() {
        let (adj, e, h) = fixture();
        let old = linbp(&adj, &e, &h, &LinBpOptions::default()).unwrap();
        let deltas = [(2usize, 3usize, 0.25), (3, 2, 0.25)];
        let seed = linbp_edge_delta_seed(&adj, &deltas, &old.beliefs, &h, true).unwrap();
        assert_eq!(seed.explicit_nodes(), vec![2, 3]);
        for v in 0..seed.n() {
            let sum: f64 = seed.row(v).iter().sum();
            assert!(sum.abs() < 1e-12);
        }
    }

    /// Duplicate deltas sum; a zero net delta produces an empty seed.
    #[test]
    fn zero_net_delta_is_empty_seed() {
        let (adj, e, h) = fixture();
        let old = linbp(&adj, &e, &h, &LinBpOptions::default()).unwrap();
        let deltas = [(1usize, 2usize, 0.5), (1, 2, -0.5)];
        let seed = linbp_edge_delta_seed(&adj, &deltas, &old.beliefs, &h, true).unwrap();
        assert_eq!(seed.num_explicit(), 0);
    }

    #[test]
    fn rejects_bad_inputs() {
        let (adj, e, h) = fixture();
        let old = linbp(&adj, &e, &h, &LinBpOptions::default()).unwrap();
        assert_eq!(
            linbp_edge_delta_seed(&adj, &[(0, 99, 1.0)], &old.beliefs, &h, true).unwrap_err(),
            LinBpError::DimensionMismatch
        );
        let bad_h = Mat::zeros(4, 4);
        assert_eq!(
            linbp_edge_delta_seed(&adj, &[], &old.beliefs, &bad_h, true).unwrap_err(),
            LinBpError::CouplingArityMismatch
        );
    }
}

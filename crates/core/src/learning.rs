//! Estimating the coupling matrix from partially labeled data.
//!
//! The paper assumes `H` is "given, e.g., by domain experts" and flags
//! learning it as future work (footnote 1). This module implements the
//! natural estimator: count class co-occurrences over edges whose *both*
//! endpoints are labeled, smooth, and project onto the doubly-stochastic
//! symmetric matrices with Sinkhorn–Knopp iterations.
//!
//! The estimator is consistent for graphs generated edge-wise with
//! probability proportional to `H(c_i, c_j)` (verified by the round-trip
//! tests), and in practice a handful of labeled edges per class pair
//! suffices to recover homophily vs heterophily structure.

use crate::coupling::{CouplingError, CouplingMatrix};
use lsbp_linalg::Mat;
use lsbp_sparse::CsrMatrix;

/// Options for [`learn_coupling`].
#[derive(Clone, Copy, Debug)]
pub struct LearnOptions {
    /// Additive (Laplace) smoothing per class pair; guards against empty
    /// cells when labels are scarce. Interpreted in units of edge counts.
    pub smoothing: f64,
    /// Sinkhorn–Knopp iterations for the doubly-stochastic projection.
    pub sinkhorn_iters: usize,
}

impl Default for LearnOptions {
    fn default() -> Self {
        Self {
            smoothing: 1.0,
            sinkhorn_iters: 500,
        }
    }
}

/// Errors from [`learn_coupling`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LearnError {
    /// Fewer than two classes requested.
    TooFewClasses,
    /// A label index is ≥ `k`.
    LabelOutOfRange,
    /// No edge has both endpoints labeled (nothing to learn from) and
    /// smoothing is 0.
    NoLabeledEdges,
    /// The Sinkhorn projection failed to produce a valid coupling matrix
    /// (should not happen with positive smoothing).
    Projection(CouplingError),
}

impl std::fmt::Display for LearnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LearnError::TooFewClasses => write!(f, "need at least two classes"),
            LearnError::LabelOutOfRange => write!(f, "label index out of range"),
            LearnError::NoLabeledEdges => write!(f, "no edges with both endpoints labeled"),
            LearnError::Projection(e) => write!(f, "projection failed: {e}"),
        }
    }
}

impl std::error::Error for LearnError {}

/// Learns a coupling matrix from a graph and partial labels
/// (`labels[v] = Some(class)` for labeled nodes).
///
/// Weighted edges contribute their weight to the co-occurrence count (a
/// heavier edge is stronger evidence of the class coupling).
pub fn learn_coupling(
    adj: &CsrMatrix,
    labels: &[Option<usize>],
    k: usize,
    opts: &LearnOptions,
) -> Result<CouplingMatrix, LearnError> {
    if k < 2 {
        return Err(LearnError::TooFewClasses);
    }
    let mut counts = Mat::from_fn(k, k, |_, _| opts.smoothing);
    let mut total_evidence = 0.0;
    for s in 0..adj.n_rows().min(labels.len()) {
        let Some(cs) = labels[s] else { continue };
        if cs >= k {
            return Err(LearnError::LabelOutOfRange);
        }
        for (t, w) in adj.row_iter(s) {
            // Each undirected edge is visited twice (s→t and t→s), filling
            // the matrix symmetrically by construction.
            let Some(ct) = labels.get(t).copied().flatten() else {
                continue;
            };
            if ct >= k {
                return Err(LearnError::LabelOutOfRange);
            }
            counts[(cs, ct)] += w;
            total_evidence += w;
        }
    }
    if total_evidence == 0.0 && opts.smoothing == 0.0 {
        return Err(LearnError::NoLabeledEdges);
    }
    // Symmetrize (exact for undirected adjacency, but cheap insurance) and
    // project to doubly stochastic with Sinkhorn–Knopp. Alternating row/
    // column normalization preserves symmetry for symmetric input.
    let mut m = Mat::from_fn(k, k, |r, c| 0.5 * (counts[(r, c)] + counts[(c, r)]));
    for _ in 0..opts.sinkhorn_iters {
        for r in 0..k {
            let sum: f64 = m.row(r).iter().sum();
            if sum > 0.0 {
                m.row_mut(r).iter_mut().for_each(|x| *x /= sum);
            }
        }
        for c in 0..k {
            let sum: f64 = (0..k).map(|r| m[(r, c)]).sum();
            if sum > 0.0 {
                for r in 0..k {
                    m[(r, c)] /= sum;
                }
            }
        }
    }
    let sym = Mat::from_fn(k, k, |r, c| 0.5 * (m[(r, c)] + m[(c, r)]));
    CouplingMatrix::new(sym).map_err(LearnError::Projection)
}

/// Convenience: learn from a fully labeled ground truth, hiding a fraction
/// of labels first (evaluation helper for the examples/benches).
pub fn learn_coupling_from_classes(
    adj: &CsrMatrix,
    classes: &[usize],
    k: usize,
    opts: &LearnOptions,
) -> Result<CouplingMatrix, LearnError> {
    let labels: Vec<Option<usize>> = classes.iter().map(|&c| Some(c)).collect();
    learn_coupling(adj, &labels, k, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsbp_graph::Graph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Samples a graph whose edges are drawn with probability proportional
    /// to H(c_s, c_t).
    fn planted_graph(h: &CouplingMatrix, n: usize, avg_deg: f64, seed: u64) -> (Graph, Vec<usize>) {
        let k = h.k();
        let mut rng = StdRng::seed_from_u64(seed);
        let classes: Vec<usize> = (0..n).map(|_| rng.gen_range(0..k)).collect();
        let mut g = Graph::new(n);
        let trials = (n as f64 * avg_deg) as usize;
        let h_max = (0..k)
            .flat_map(|i| (0..k).map(move |j| (i, j)))
            .map(|(i, j)| h.raw()[(i, j)])
            .fold(0.0f64, f64::max);
        let mut placed = std::collections::HashSet::new();
        while g.num_edges() < trials {
            let s = rng.gen_range(0..n);
            let t = rng.gen_range(0..n);
            if s == t || placed.contains(&(s.min(t), s.max(t))) {
                continue;
            }
            let p = h.raw()[(classes[s], classes[t])] / h_max;
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                placed.insert((s.min(t), s.max(t)));
                g.add_edge_unweighted(s, t);
            }
        }
        (g, classes)
    }

    #[test]
    fn recovers_homophily() {
        let truth = CouplingMatrix::fig1a().unwrap();
        let (g, classes) = planted_graph(&truth, 600, 8.0, 1);
        let learned =
            learn_coupling_from_classes(&g.adjacency(), &classes, 2, &LearnOptions::default())
                .unwrap();
        // Diagonal dominance recovered with the right magnitude.
        assert!(learned.raw()[(0, 0)] > 0.7, "{:?}", learned.raw());
        assert!((learned.raw()[(0, 0)] - 0.8).abs() < 0.05);
    }

    #[test]
    fn recovers_heterophily() {
        let truth = CouplingMatrix::fig1b().unwrap();
        let (g, classes) = planted_graph(&truth, 600, 8.0, 2);
        let learned =
            learn_coupling_from_classes(&g.adjacency(), &classes, 2, &LearnOptions::default())
                .unwrap();
        assert!(learned.raw()[(0, 1)] > 0.6, "{:?}", learned.raw());
        assert!((learned.raw()[(0, 1)] - 0.7).abs() < 0.05);
    }

    /// The general Fig. 1c structure (mixed homophily/heterophily) is
    /// recovered cell-wise within sampling error.
    #[test]
    fn recovers_general_coupling() {
        let truth = CouplingMatrix::fig1c().unwrap();
        let (g, classes) = planted_graph(&truth, 1500, 10.0, 3);
        let learned =
            learn_coupling_from_classes(&g.adjacency(), &classes, 3, &LearnOptions::default())
                .unwrap();
        for r in 0..3 {
            for c in 0..3 {
                assert!(
                    (learned.raw()[(r, c)] - truth.raw()[(r, c)]).abs() < 0.06,
                    "cell ({r},{c}): learned {} vs truth {}",
                    learned.raw()[(r, c)],
                    truth.raw()[(r, c)]
                );
            }
        }
    }

    /// Partial labels: learning only sees labeled-labeled edges.
    #[test]
    fn partial_labels() {
        let truth = CouplingMatrix::fig1a().unwrap();
        let (g, classes) = planted_graph(&truth, 1000, 10.0, 4);
        let mut rng = StdRng::seed_from_u64(9);
        let labels: Vec<Option<usize>> = classes
            .iter()
            .map(|&c| if rng.gen_bool(0.4) { Some(c) } else { None })
            .collect();
        let learned = learn_coupling(&g.adjacency(), &labels, 2, &LearnOptions::default()).unwrap();
        assert!(learned.raw()[(0, 0)] > 0.7);
    }

    #[test]
    fn error_cases() {
        let g = Graph::new(3);
        let adj = g.adjacency();
        assert_eq!(
            learn_coupling(&adj, &[None, None, None], 1, &LearnOptions::default()),
            Err(LearnError::TooFewClasses)
        );
        assert_eq!(
            learn_coupling(
                &adj,
                &[None, None, None],
                2,
                &LearnOptions {
                    smoothing: 0.0,
                    ..Default::default()
                }
            ),
            Err(LearnError::NoLabeledEdges)
        );
        // Out-of-range labels are rejected even on edgeless nodes.
        assert_eq!(
            learn_coupling(&adj, &[Some(5), None, None], 2, &LearnOptions::default()),
            Err(LearnError::LabelOutOfRange)
        );
        let mut g2 = Graph::new(2);
        g2.add_edge_unweighted(0, 1);
        assert_eq!(
            learn_coupling(
                &g2.adjacency(),
                &[Some(5), Some(0)],
                2,
                &LearnOptions::default()
            ),
            Err(LearnError::LabelOutOfRange)
        );
        // With no labeled edges but positive smoothing, the result is the
        // uniform coupling (maximum entropy).
        let uniform =
            learn_coupling(&adj, &[None, None, None], 3, &LearnOptions::default()).unwrap();
        for r in 0..3 {
            for c in 0..3 {
                assert!((uniform.raw()[(r, c)] - 1.0 / 3.0).abs() < 1e-9);
            }
        }
    }

    /// The learned matrix is always a valid coupling matrix (validated by
    /// construction) and usable end-to-end in LinBP.
    #[test]
    fn learned_matrix_runs_linbp() {
        let truth = CouplingMatrix::fig1b().unwrap();
        let (g, classes) = planted_graph(&truth, 300, 6.0, 7);
        let adj = g.adjacency();
        let learned =
            learn_coupling_from_classes(&adj, &classes, 2, &LearnOptions::default()).unwrap();
        let mut e = crate::beliefs::ExplicitBeliefs::new(300, 2);
        for v in (0..300).step_by(10) {
            e.set_label(v, classes[v], 1.0).unwrap();
        }
        let eps = 0.5 * crate::convergence::eps_max_exact_linbp_star(&learned.residual(), &adj);
        let r = crate::linbp::linbp_star(
            &adj,
            &e,
            &learned.scaled_residual(eps),
            &crate::linbp::LinBpOptions::default(),
        )
        .unwrap();
        assert!(r.converged);
        // Majority of unlabeled nodes classified correctly.
        let mut correct = 0;
        let mut total = 0;
        for (v, &class) in classes.iter().enumerate() {
            if e.is_explicit(v) {
                continue;
            }
            let tops = r.beliefs.top_beliefs(v, 1e-9);
            if tops.len() == 1 {
                total += 1;
                if tops[0] == class {
                    correct += 1;
                }
            }
        }
        assert!(correct * 3 > total * 2, "accuracy {correct}/{total}");
    }
}

//! Standard multi-class loopy Belief Propagation — the baseline the paper
//! linearizes (Sect. 2, Eqs. 1–3).
//!
//! Faithful to the paper's formulation:
//!
//! * messages are `k`-dimensional, kept normalized so their entries sum to
//!   `k` (i.e. centered around 1 — Eq. 3's `Z_st`),
//! * the message from `s` to `t` excludes what `t` itself sent
//!   (`u ∈ N(s)\t` in Eq. 2 — the "echo cancellation" that LinBP models
//!   with the `D·B̂·Ĥ²` term),
//! * beliefs are `b_s(i) ∝ e_s(i)·Π_u m_us(i)`, normalized to 1 (Eq. 1).
//!
//! Updates are synchronous (all new messages computed from the previous
//! round), matching the matrix semantics LinBP is derived from.
//!
//! Priors must be strictly positive probability vectors. Explicit residual
//! beliefs are mapped to priors `e_s = 1/k + s·ê_s` with an automatic
//! down-scaling `s` when a residual row would push a prior negative —
//! justified by Corollary 13 (scaling `Ê` does not change the standardized
//! belief assignment).

use crate::beliefs::{BeliefMatrix, ExplicitBeliefs};
use lsbp_linalg::{
    weight_balanced_ranges, FixedPointOp, FixedPointSolver, Mat, ParallelismConfig, StepOutcome,
    ToleranceNorm,
};
use lsbp_sparse::CsrMatrix;
use std::ops::Range;

/// Options for [`bp`].
#[derive(Clone, Copy, Debug)]
pub struct BpOptions {
    /// Maximum number of message-passing rounds.
    pub max_iter: usize,
    /// Convergence threshold on the message change (measured in `norm`);
    /// set to 0.0 to always run exactly `max_iter` rounds (timing mode).
    pub tol: f64,
    /// Norm the convergence threshold is measured in (default: largest
    /// absolute message change).
    pub norm: ToleranceNorm,
    /// Explicit scaling of residual priors, or `None` to auto-scale to the
    /// largest factor (≤ 1) keeping all priors strictly positive with a
    /// 10% margin.
    pub prior_scale: Option<f64>,
    /// Message damping in `[0, 1)`: `m ← (1−λ)·m_new + λ·m_old`. 0 is the
    /// paper's plain update; small values can rescue oscillating runs.
    pub damping: f64,
    /// Compute the `Π_{u∈N(s)\t}` products naively per outgoing edge
    /// (`O(deg²·k)` per node) instead of caching the full product and
    /// dividing (`O(deg·k)`). The naive form is what straightforward BP
    /// implementations (like the paper's JAVA baseline behaves as) do; it
    /// is the ablation behind the growing BP/LinBP gap in Fig. 7a/7c,
    /// since Kronecker graphs grow their maximum degree with size.
    pub naive_products: bool,
    /// Serial vs. pooled execution of the per-node message recomputation.
    /// Every node writes only its own out-edge messages (a disjoint slice
    /// of the message array), so results are bitwise identical for every
    /// thread count; the default follows `LSBP_THREADS`.
    pub parallelism: ParallelismConfig,
}

impl Default for BpOptions {
    fn default() -> Self {
        Self {
            max_iter: 100,
            tol: 1e-9,
            norm: ToleranceNorm::MaxAbs,
            prior_scale: None,
            damping: 0.0,
            naive_products: false,
            parallelism: ParallelismConfig::default(),
        }
    }
}

/// Result of a BP run.
#[derive(Clone, Debug)]
pub struct BpResult {
    /// Final beliefs in residual form (`b − 1/k`), one row per node.
    pub beliefs: BeliefMatrix,
    /// Whether the messages met `tol` before `max_iter`.
    pub converged: bool,
    /// Rounds actually executed.
    pub iterations: usize,
    /// Largest absolute message change in the final round.
    pub final_delta: f64,
}

/// Errors from [`bp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BpError {
    /// Adjacency and explicit-belief node counts differ.
    DimensionMismatch,
    /// The coupling matrix arity differs from the explicit beliefs' `k`.
    CouplingArityMismatch,
    /// The coupling matrix has a non-positive entry (BP needs positive
    /// potentials; reduce the εH scale).
    NonPositiveCoupling,
    /// The adjacency matrix is not structurally symmetric.
    AsymmetricAdjacency,
}

impl std::fmt::Display for BpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BpError::DimensionMismatch => write!(f, "adjacency/beliefs node count mismatch"),
            BpError::CouplingArityMismatch => write!(f, "coupling matrix arity mismatch"),
            BpError::NonPositiveCoupling => {
                write!(f, "coupling matrix must be strictly positive for BP")
            }
            BpError::AsymmetricAdjacency => write!(f, "adjacency must be structurally symmetric"),
        }
    }
}

impl std::error::Error for BpError {}

/// Runs standard loopy BP with raw coupling matrix `h_raw`
/// (`k × k`, strictly positive, doubly stochastic).
///
/// Edge weights are ignored — standard BP has no notion of weighted
/// pairwise potentials in the paper's formulation; all its BP baselines run
/// on unweighted graphs.
pub fn bp(
    adj: &CsrMatrix,
    explicit: &ExplicitBeliefs,
    h_raw: &Mat,
    opts: &BpOptions,
) -> Result<BpResult, BpError> {
    let n = explicit.n();
    let k = explicit.k();
    if adj.n_rows() != n || adj.n_cols() != n {
        return Err(BpError::DimensionMismatch);
    }
    if h_raw.rows() != k || h_raw.cols() != k {
        return Err(BpError::CouplingArityMismatch);
    }
    if h_raw.as_slice().iter().any(|&x| x <= 0.0) {
        return Err(BpError::NonPositiveCoupling);
    }

    // Priors: e_s = 1/k + scale · ê_s, strictly positive.
    let scale = opts
        .prior_scale
        .unwrap_or_else(|| auto_prior_scale(explicit));
    let uniform = 1.0 / k as f64;
    let priors = Mat::from_fn(n, k, |r, c| uniform + scale * explicit.row(r)[c]);
    debug_assert!(
        priors.as_slice().iter().all(|&x| x > 0.0),
        "priors must be positive"
    );

    // Directed edge table + reverse-edge index (u→v stored entry e; rev[e]
    // is the entry of v→u).
    let m_edges = adj.nnz();
    let mut rev = vec![0u32; m_edges];
    {
        let mut e = 0usize;
        for u in 0..n {
            for &v in adj.row_cols(u) {
                let r = adj
                    .entry_index(v as usize, u)
                    .ok_or(BpError::AsymmetricAdjacency)?;
                rev[e] = r as u32;
                e += 1;
            }
        }
    }

    // Messages, initialized to all-ones (centered), indexed [edge][class].
    let mut msgs = vec![1.0f64; m_edges * k];
    let mut new_msgs = vec![0.0f64; m_edges * k];

    let ctx = MsgContext {
        adj,
        priors: &priors,
        h_raw,
        rev: &rev,
        k,
        naive: opts.naive_products,
        damping: opts.damping,
    };
    // Node partition for the parallel path: nnz-balanced over out-degrees,
    // so every task owns a contiguous, disjoint slice of the edge-indexed
    // message array. Each node's messages are computed by exactly the
    // serial code, so results are bitwise identical for any thread count.
    let cfg = opts.parallelism;
    let row_ptr = adj.row_offsets();
    let parts = cfg.partitions((m_edges + n) * k);
    let ranges: Vec<Range<usize>> = if parts <= 1 {
        std::iter::once(0..n).collect()
    } else {
        weight_balanced_ranges(row_ptr, parts)
    };
    let pool = cfg.pool();

    let mut op = BpRounds {
        ctx,
        msgs: &mut msgs,
        new_msgs: &mut new_msgs,
        ranges: &ranges,
        row_ptr,
        k,
        pool: &pool,
    };
    let solver = FixedPointSolver::new(opts.max_iter, opts.tol)
        .with_norm(opts.norm)
        .with_damping(opts.damping);
    let outcome = solver.run(&mut op);
    let (converged, iterations, final_delta) =
        (outcome.converged, outcome.iterations, outcome.final_delta);
    let ctx = op.ctx;

    // Beliefs: b_s(i) ∝ e_s(i)·Π m_us(i), normalized to 1, returned as
    // residuals b − 1/k. Same partition: each task writes a disjoint
    // contiguous block of belief rows.
    let mut beliefs = Mat::zeros(n, k);
    if ranges.len() <= 1 {
        beliefs_rows(&ctx, &msgs, 0..n, beliefs.as_mut_slice());
    } else {
        let mut rest: &mut [f64] = beliefs.as_mut_slice();
        let msgs_ref = &msgs;
        pool.scope(|s| {
            for range in ranges.iter().cloned() {
                let (chunk, tail) = rest.split_at_mut((range.end - range.start) * k);
                rest = tail;
                let ctx = &ctx;
                s.spawn(move || beliefs_rows(ctx, msgs_ref, range, chunk));
            }
        });
    }

    Ok(BpResult {
        beliefs: BeliefMatrix::from_mat(beliefs),
        converged,
        iterations,
        final_delta,
    })
}

/// One synchronous message round as a [`FixedPointOp`]: the solver drives
/// the rounds while this operator owns the message double buffer and the
/// node partition.
struct BpRounds<'a, 'b> {
    ctx: MsgContext<'a>,
    msgs: &'b mut Vec<f64>,
    new_msgs: &'b mut Vec<f64>,
    ranges: &'b [Range<usize>],
    row_ptr: &'a [usize],
    k: usize,
    pool: &'b rayon::ThreadPool,
}

impl FixedPointOp for BpRounds<'_, '_> {
    fn step(&mut self, solver: &FixedPointSolver, _iteration: usize) -> StepOutcome {
        // Damping is solver policy; the kernels blend per message.
        self.ctx.damping = solver.damping;
        let n = self.ctx.adj.n_rows();
        let max_delta = if self.ranges.len() <= 1 {
            bp_round_rows(&self.ctx, self.msgs, 0..n, self.new_msgs)
        } else {
            let mut partials = vec![0.0f64; self.ranges.len()];
            let mut rest: &mut [f64] = self.new_msgs;
            let msgs_ref: &[f64] = self.msgs;
            let k = self.k;
            let row_ptr = self.row_ptr;
            let ctx = &self.ctx;
            self.pool.scope(|s| {
                for (slot, range) in partials.iter_mut().zip(self.ranges.iter().cloned()) {
                    let len = (row_ptr[range.end] - row_ptr[range.start]) * k;
                    let (chunk, tail) = rest.split_at_mut(len);
                    rest = tail;
                    s.spawn(move || *slot = bp_round_rows(ctx, msgs_ref, range, chunk));
                }
            });
            partials.into_iter().fold(0.0f64, f64::max)
        };
        let delta = match solver.norm {
            ToleranceNorm::MaxAbs => max_delta,
            // Fixed edge order regardless of thread count: an L2 sum is
            // order-dependent, so it runs as one serial pass over the
            // message buffers (negligible next to the round itself).
            ToleranceNorm::L2 => self
                .new_msgs
                .iter()
                .zip(self.msgs.iter())
                .map(|(&new, &old)| (new - old) * (new - old))
                .sum::<f64>()
                .sqrt(),
        };
        std::mem::swap(self.msgs, self.new_msgs);
        StepOutcome::proceed(delta)
    }
}

/// Read-only inputs of one message round, bundled for the range kernels.
struct MsgContext<'a> {
    adj: &'a CsrMatrix,
    priors: &'a Mat,
    h_raw: &'a Mat,
    rev: &'a [u32],
    k: usize,
    naive: bool,
    damping: f64,
}

/// Rescales a running product back into `[1e-100, 1e100]` when it drifts
/// out (the common scale cancels in `Z_st`).
#[inline]
fn rescale_if_extreme(buf: &mut [f64]) {
    let max = buf.iter().fold(0.0f64, |a, &x| a.max(x));
    if !(1e-100..=1e100).contains(&max) && max > 0.0 {
        let inv = 1.0 / max;
        buf.iter_mut().for_each(|p| *p *= inv);
    }
}

/// Computes one round of outgoing messages for the node block `nodes`,
/// writing into `out` — the slice of the edge-indexed message array
/// covering exactly those nodes' out-edges — and returns the block's
/// largest absolute message change. Shared verbatim by the serial path and
/// every parallel task.
fn bp_round_rows(ctx: &MsgContext<'_>, msgs: &[f64], nodes: Range<usize>, out: &mut [f64]) -> f64 {
    let k = ctx.k;
    let row_ptr = ctx.adj.row_offsets();
    let edge_base = row_ptr[nodes.start];
    let mut prod = vec![0.0f64; k];
    let mut term = vec![0.0f64; k];
    let mut max_delta = 0.0f64;
    for s in nodes {
        let e = row_ptr[s];
        let deg = row_ptr[s + 1] - e;
        // prod_s(j) = e_s(j) · Π over in-edges (u→s) of m_us(j), with
        // periodic rescaling against overflow/underflow. Skipped in naive
        // mode.
        if !ctx.naive {
            prod.copy_from_slice(ctx.priors.row(s));
            for idx in 0..deg {
                let in_edge = ctx.rev[e + idx] as usize;
                let m_in = &msgs[in_edge * k..(in_edge + 1) * k];
                for (p, &mi) in prod.iter_mut().zip(m_in) {
                    *p *= mi;
                }
                rescale_if_extreme(&mut prod);
            }
        }
        // Outgoing messages: m_st(i) ∝ Σ_j H(j,i)·prod_s(j)/m_ts(j).
        for idx in 0..deg {
            let edge = e + idx;
            let back = ctx.rev[edge] as usize;
            if ctx.naive {
                // Direct Π over N(s)\t — quadratic in the degree.
                term.copy_from_slice(ctx.priors.row(s));
                for idx2 in 0..deg {
                    let in_edge = ctx.rev[e + idx2] as usize;
                    if in_edge == back {
                        continue;
                    }
                    let m_in = &msgs[in_edge * k..(in_edge + 1) * k];
                    for (t, &mi) in term.iter_mut().zip(m_in) {
                        *t *= mi;
                    }
                    rescale_if_extreme(&mut term);
                }
            } else {
                let m_back = &msgs[back * k..(back + 1) * k];
                for j in 0..k {
                    term[j] = prod[j] / m_back[j].max(1e-300);
                }
            }
            let dst = &mut out[(edge - edge_base) * k..(edge - edge_base + 1) * k];
            let mut sum = 0.0;
            for (i, d) in dst.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (j, &t) in term.iter().enumerate() {
                    acc += ctx.h_raw[(j, i)] * t;
                }
                *d = acc;
                sum += acc;
            }
            // Normalize so entries sum to k (Eq. 3).
            let z = k as f64 / sum.max(1e-300);
            let old = &msgs[edge * k..(edge + 1) * k];
            for (i, d) in dst.iter_mut().enumerate() {
                *d *= z;
                if ctx.damping > 0.0 {
                    *d = (1.0 - ctx.damping) * *d + ctx.damping * old[i];
                }
                max_delta = max_delta.max((*d - old[i]).abs());
            }
        }
    }
    max_delta
}

/// Computes final residual beliefs for the node block `nodes`, writing
/// into `block` — the flat row-major storage of exactly those belief rows.
fn beliefs_rows(ctx: &MsgContext<'_>, msgs: &[f64], nodes: Range<usize>, block: &mut [f64]) {
    let k = ctx.k;
    let uniform = 1.0 / k as f64;
    let row_ptr = ctx.adj.row_offsets();
    let mut prod = vec![0.0f64; k];
    for s in nodes.clone() {
        prod.copy_from_slice(ctx.priors.row(s));
        let e = row_ptr[s];
        for idx in 0..(row_ptr[s + 1] - e) {
            let in_edge = ctx.rev[e + idx] as usize;
            let m_in = &msgs[in_edge * k..(in_edge + 1) * k];
            for (p, &mi) in prod.iter_mut().zip(m_in) {
                *p *= mi;
            }
            rescale_if_extreme(&mut prod);
        }
        let sum: f64 = prod.iter().sum();
        let row = &mut block[(s - nodes.start) * k..(s - nodes.start + 1) * k];
        for (b, &p) in row.iter_mut().zip(&prod) {
            *b = p / sum.max(1e-300) - uniform;
        }
    }
}

/// Largest factor (≤ 1) mapping residuals into strictly positive priors
/// with a 10% margin: `1/k + s·ê > 0.1/k`.
fn auto_prior_scale(explicit: &ExplicitBeliefs) -> f64 {
    let k = explicit.k() as f64;
    let most_negative = explicit
        .residual_matrix()
        .as_slice()
        .iter()
        .fold(0.0f64, |m, &x| m.min(x));
    if most_negative >= 0.0 {
        return 1.0;
    }
    (0.9 / k / (-most_negative)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coupling::CouplingMatrix;
    use lsbp_graph::generators::{cycle, path};

    fn explicit_path(n: usize) -> ExplicitBeliefs {
        let mut e = ExplicitBeliefs::new(n, 2);
        e.set_residual(0, &[0.1, -0.1]).unwrap();
        e
    }

    /// On a tree (path), BP is exact and converges; homophily must pull
    /// every node toward the seed's class.
    #[test]
    fn homophily_on_path() {
        let g = path(5);
        let adj = g.adjacency();
        let e = explicit_path(5);
        let h = CouplingMatrix::fig1a().unwrap();
        let r = bp(&adj, &e, h.raw(), &BpOptions::default()).unwrap();
        assert!(r.converged, "BP should converge on a tree");
        for v in 0..5 {
            assert!(r.beliefs.row(v)[0] > 0.0, "node {v} should lean class 0");
            assert_eq!(r.beliefs.top_beliefs(v, 1e-9), vec![0]);
        }
        // Influence decays with distance.
        assert!(r.beliefs.row(1)[0] > r.beliefs.row(2)[0]);
        assert!(r.beliefs.row(2)[0] > r.beliefs.row(4)[0]);
    }

    /// Heterophily alternates labels along a path.
    #[test]
    fn heterophily_alternates() {
        let g = path(4);
        let adj = g.adjacency();
        let e = explicit_path(4);
        let h = CouplingMatrix::fig1b().unwrap();
        let r = bp(&adj, &e, h.raw(), &BpOptions::default()).unwrap();
        assert!(r.converged);
        assert_eq!(r.beliefs.top_beliefs(0, 1e-9), vec![0]);
        assert_eq!(r.beliefs.top_beliefs(1, 1e-9), vec![1]);
        assert_eq!(r.beliefs.top_beliefs(2, 1e-9), vec![0]);
        assert_eq!(r.beliefs.top_beliefs(3, 1e-9), vec![1]);
    }

    /// Beliefs rows are residuals: they sum to 0.
    #[test]
    fn beliefs_are_centered() {
        let g = cycle(6);
        let adj = g.adjacency();
        let e = explicit_path(6);
        let h = CouplingMatrix::fig1a().unwrap();
        let r = bp(&adj, &e, h.raw(), &BpOptions::default()).unwrap();
        for v in 0..6 {
            assert!(r.beliefs.row(v).iter().sum::<f64>().abs() < 1e-9);
        }
    }

    /// With no explicit beliefs, everything stays uniform (zero residual).
    #[test]
    fn uniform_without_evidence() {
        let g = cycle(5);
        let adj = g.adjacency();
        let e = ExplicitBeliefs::new(5, 3);
        // fig1c at full scale has a zero entry; any smaller scale is a
        // strictly positive potential.
        let h = CouplingMatrix::fig1c().unwrap().raw_at_scale(0.5);
        let r = bp(&adj, &e, &h, &BpOptions::default()).unwrap();
        assert!(r.converged);
        assert!(r.beliefs.residual().max_abs() < 1e-12);
    }

    /// Strong priors like [2, −1, −1] are auto-scaled into valid
    /// probability space instead of crashing.
    #[test]
    fn auto_scaling_strong_priors() {
        let g = path(3);
        let adj = g.adjacency();
        let mut e = ExplicitBeliefs::new(3, 3);
        e.set_residual(0, &[2.0, -1.0, -1.0]).unwrap();
        let h = CouplingMatrix::fig1c().unwrap();
        // fig1c has a 0.0 entry: positivity check must reject the raw
        // matrix...
        assert!(matches!(
            bp(&adj, &e, h.raw(), &BpOptions::default()),
            Err(BpError::NonPositiveCoupling)
        ));
        // ...but a scaled-down version (as used in every experiment) works.
        let h_eps = h.raw_at_scale(0.3);
        let r = bp(&adj, &e, &h_eps, &BpOptions::default()).unwrap();
        assert!(r.converged);
        assert_eq!(r.beliefs.top_beliefs(0, 1e-9), vec![0]);
    }

    #[test]
    fn dimension_checks() {
        let g = path(3);
        let adj = g.adjacency();
        let e = ExplicitBeliefs::new(4, 2);
        let h = CouplingMatrix::fig1a().unwrap();
        assert!(matches!(
            bp(&adj, &e, h.raw(), &BpOptions::default()),
            Err(BpError::DimensionMismatch)
        ));
        let e3 = ExplicitBeliefs::new(3, 3);
        assert!(matches!(
            bp(&adj, &e3, h.raw(), &BpOptions::default()),
            Err(BpError::CouplingArityMismatch)
        ));
    }

    /// Fixed-iteration timing mode: tol = 0 runs exactly max_iter rounds.
    #[test]
    fn timing_mode_runs_all_rounds() {
        let g = path(4);
        let adj = g.adjacency();
        let e = explicit_path(4);
        let h = CouplingMatrix::fig1a().unwrap();
        let r = bp(
            &adj,
            &e,
            h.raw(),
            &BpOptions {
                max_iter: 5,
                tol: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.iterations, 5);
        assert!(!r.converged);
    }

    /// Naive (quadratic) product mode computes the same messages as the
    /// cached (divide) mode.
    #[test]
    fn naive_products_match_cached() {
        let g = lsbp_graph::generators::erdos_renyi_gnm(25, 60, 4);
        let adj = g.adjacency();
        let mut e = ExplicitBeliefs::new(25, 3);
        e.set_residual(0, &[0.1, -0.04, -0.06]).unwrap();
        e.set_residual(13, &[-0.05, 0.1, -0.05]).unwrap();
        let h = CouplingMatrix::fig1c().unwrap().raw_at_scale(0.4);
        let fast = bp(&adj, &e, &h, &BpOptions::default()).unwrap();
        let naive = bp(
            &adj,
            &e,
            &h,
            &BpOptions {
                naive_products: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(fast.converged, naive.converged);
        assert!(
            fast.beliefs
                .residual()
                .max_abs_diff(naive.beliefs.residual())
                < 1e-9
        );
    }

    /// Damping preserves the fixed point: a converged run with and without
    /// damping lands on the same beliefs.
    #[test]
    fn damping_same_fixed_point() {
        let g = cycle(6);
        let adj = g.adjacency();
        let e = explicit_path(6);
        let h = CouplingMatrix::fig1a().unwrap();
        let plain = bp(&adj, &e, h.raw(), &BpOptions::default()).unwrap();
        let damped = bp(
            &adj,
            &e,
            h.raw(),
            &BpOptions {
                damping: 0.3,
                max_iter: 500,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(plain.converged && damped.converged);
        assert!(
            plain
                .beliefs
                .residual()
                .max_abs_diff(damped.beliefs.residual())
                < 1e-6
        );
    }
}

#![warn(missing_docs)]

//! # LSBP — Linearized and Single-Pass Belief Propagation
//!
//! A from-scratch Rust reproduction of *"Linearized and Single-Pass Belief
//! Propagation"* (Gatterbauer, Günnemann, Koutra, Faloutsos — PVLDB 8(5),
//! 2015). The crate implements the full method stack of the paper:
//!
//! * [`mod@bp`] — standard multi-class loopy Belief Propagation (the baseline,
//!   Eqs. 1–3),
//! * [`mod@linbp`] — **LinBP** and **LinBP\*** , the paper's linearization
//!   `B̂ = Ê + A·B̂·Ĥ − D·B̂·Ĥ²` (Eq. 4/5) as iterative updates (Eq. 6/7),
//! * [`closed_form`] — the Kronecker closed form of Proposition 7
//!   (`vec(B̂) = (I − Ĥ⊗A + Ĥ²⊗D)⁻¹ vec(Ê)`), both densely (LU) and
//!   matrix-free (Jacobi),
//! * [`mod@sbp`] — **SBP**, the εH → 0⁺ limit semantics (Definition 15,
//!   Theorem 19), with incremental maintenance for new explicit beliefs
//!   (Algorithm 3) and new edges (Algorithm 4 / Appendix C),
//! * [`convergence`] — exact spectral criteria (Lemma 8), sufficient norm
//!   criteria (Lemma 9 and Lemma 23) and the Mooij–Kappen bound for
//!   standard BP (Appendix G),
//! * [`coupling`] / [`beliefs`] — coupling matrices (centering, scaling,
//!   validation) and belief matrices (centering, standardization ζ,
//!   top-belief assignment with ties),
//! * [`metrics`] — the tie-aware precision/recall/F1 of Sect. 7.
//!
//! ## Quick start
//!
//! ```
//! use lsbp::prelude::*;
//! use lsbp_graph::generators::fig5c_torus;
//!
//! // The 8-node torus of Example 20, k = 3 classes.
//! let graph = fig5c_torus();
//! let coupling = CouplingMatrix::fig1c().unwrap();
//! let mut explicit = ExplicitBeliefs::new(graph.num_nodes(), 3);
//! explicit.set_residual(0, &[2.0, -1.0, -1.0]).unwrap();
//! explicit.set_residual(1, &[-1.0, 2.0, -1.0]).unwrap();
//! explicit.set_residual(2, &[-1.0, -1.0, 2.0]).unwrap();
//!
//! // Run LinBP with a convergent scaling of the coupling strengths.
//! let eps = 0.1;
//! let adj = graph.adjacency();
//! let h = coupling.scaled_residual(eps);
//! let result = linbp(&adj, &explicit, &h, &LinBpOptions::default()).unwrap();
//! assert!(result.converged);
//! let labels = result.beliefs.top_belief_assignment(1e-9);
//! assert_eq!(labels[0], vec![0]); // v1 keeps its own label
//! ```

pub mod batch;
pub mod beliefs;
pub mod bp;
pub mod closed_form;
pub mod convergence;
pub mod coupling;
pub mod edge_delta;
pub mod learning;
pub mod linbp;
pub mod metrics;
pub mod rwr;
pub mod sbp;

/// Runs `f` against the graph operator the execution config selects for a
/// monolithic CSR input: the matrix itself when `cfg.shards() <= 1`, or a
/// freshly built [`lsbp_sparse::ShardedCsr`] with that many nnz-balanced
/// row-range shards otherwise. This is how the shard-count knob on
/// [`ParallelismConfig`] reaches every `CsrMatrix`-taking entry point;
/// callers that already hold a sharded (or otherwise exotic) operator use
/// the `*_on` variants directly and skip the conversion. Results are
/// bitwise identical either way — the knob only changes the storage
/// layout the solve streams through.
pub(crate) fn with_operator<R>(
    adj: &lsbp_sparse::CsrMatrix,
    cfg: &ParallelismConfig,
    f: impl FnOnce(&dyn lsbp_sparse::PropagationOperator) -> R,
) -> R {
    if cfg.shards() > 1 {
        f(&lsbp_sparse::ShardedCsr::from_csr(adj, cfg.shards()))
    } else {
        f(adj)
    }
}

/// Spills `adj` to `path` as an on-disk shard store and opens it as a
/// [`lsbp_sparse::PagedCsr`] configured from `cfg`: the shard count comes
/// from `cfg.shards()` (at least 1) and the buffer-pool byte budget from
/// `cfg.memory_budget()` (unbudgeted when the knob is unset). The
/// returned operator plugs into every `*_on` entry point —
/// `linbp_on(&paged, …)` is the out-of-core LinBP path — and is bitwise
/// identical to solving on the in-memory matrix at any budget.
pub fn spill_paged(
    adj: &lsbp_sparse::CsrMatrix,
    path: impl AsRef<std::path::Path>,
    cfg: &ParallelismConfig,
) -> Result<lsbp_sparse::PagedCsr, lsbp_sparse::ShardFileError> {
    lsbp_sparse::PagedCsr::spill(adj, path, cfg.shards().max(1), paged_options(cfg))
}

/// Opens an existing shard store (written by [`spill_paged`] or
/// [`lsbp_sparse::ShardFile::write`]) as a paged operator with the
/// buffer-pool budget from `cfg.memory_budget()`. See [`spill_paged`].
pub fn open_paged(
    path: impl AsRef<std::path::Path>,
    cfg: &ParallelismConfig,
) -> Result<lsbp_sparse::PagedCsr, lsbp_sparse::ShardFileError> {
    lsbp_sparse::PagedCsr::open(path, paged_options(cfg))
}

fn paged_options(cfg: &ParallelismConfig) -> lsbp_sparse::PagedOptions {
    lsbp_sparse::PagedOptions::default().with_budget(cfg.memory_budget())
}

/// Convenient re-exports of the main API surface.
pub mod prelude {
    pub use crate::batch::{
        linbp_batch, linbp_batch_on, linbp_star_batch, linbp_star_batch_on, linbp_update_batch,
        linbp_update_batch_on, rwr_batch, rwr_batch_on,
    };
    pub use crate::beliefs::{BeliefMatrix, ExplicitBeliefs};
    pub use crate::bp::{bp, BpOptions, BpResult};
    pub use crate::closed_form::{linbp_closed_form_dense, linbp_closed_form_jacobi};
    pub use crate::convergence::{
        eps_max_exact_linbp, eps_max_exact_linbp_star, eps_max_sufficient_linbp,
        eps_max_sufficient_linbp_star, mooij_constant, mooij_guarantees_bp_convergence,
    };
    pub use crate::coupling::{CouplingError, CouplingMatrix};
    pub use crate::edge_delta::linbp_edge_delta_seed;
    pub use crate::learning::{learn_coupling, learn_coupling_from_classes, LearnOptions};
    pub use crate::linbp::{
        linbp, linbp_observed, linbp_on, linbp_star, linbp_star_on, linbp_step, linbp_update,
        LinBpOptions, LinBpResult, LinBpScratch,
    };
    pub use crate::metrics::{
        accuracy, f1_score, precision_recall, precision_recall_masked, quality, QualityReport,
    };
    pub use crate::rwr::{rwr, rwr_on, RwrOptions, RwrResult};
    pub use crate::sbp::{
        sbp, sbp_add_edges, sbp_add_explicit, sbp_observed, sbp_on, sbp_with, SbpResult,
    };
    pub use crate::{open_paged, spill_paged};
    pub use lsbp_linalg::{
        FixedPointOp, FixedPointSolver, IterationEvent, ParallelismConfig, SolveOutcome,
        StepOutcome, StepStatus, ToleranceNorm,
    };
    pub use lsbp_sparse::{
        PagedCsr, PagedOptions, PagerStats, PropagationOperator, ShardFile, ShardFileError,
        ShardedCsr,
    };
}

pub use prelude::*;

//! Belief matrices: explicit (prior) and final (posterior) beliefs.
//!
//! Everything is stored in *residual* (centered) form (Definition 3): a
//! belief row sums to 0, with positive entries marking attraction to a
//! class. A node is "explicit" iff its residual row is non-zero (footnote
//! 10 of the paper). `b = 1/k + b̂` recovers the probability-space vector
//! when needed (only standard BP works in probability space).

use lsbp_linalg::{population_std, standardize, Mat};

/// Errors when constructing explicit beliefs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BeliefError {
    /// Node id ≥ n.
    NodeOutOfRange,
    /// The supplied vector has the wrong number of classes.
    WrongArity,
    /// A residual belief vector must sum to zero.
    NotCentered,
}

impl std::fmt::Display for BeliefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BeliefError::NodeOutOfRange => write!(f, "node id out of range"),
            BeliefError::WrongArity => write!(f, "belief vector has wrong number of classes"),
            BeliefError::NotCentered => write!(f, "residual belief vector must sum to zero"),
        }
    }
}

impl std::error::Error for BeliefError {}

/// A centered one-hot label vector: `scale·(k−1)` for the labeled class and
/// `−scale` elsewhere (sums to 0). With `k = 3, scale = 1` this is the
/// `[2, −1, −1]` convention of Example 20.
pub fn centered_one_hot(k: usize, class: usize, scale: f64) -> Vec<f64> {
    assert!(class < k, "class out of range");
    (0..k)
        .map(|i| {
            if i == class {
                scale * (k as f64 - 1.0)
            } else {
                -scale
            }
        })
        .collect()
}

/// The explicit (prior) beliefs `Ê`: an `n × k` residual matrix, zero for
/// unlabeled nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct ExplicitBeliefs {
    mat: Mat,
    explicit: Vec<bool>,
}

impl ExplicitBeliefs {
    /// All-unlabeled beliefs for `n` nodes and `k` classes.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k >= 2, "need at least two classes");
        Self {
            mat: Mat::zeros(n, k),
            explicit: vec![false; n],
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.mat.rows()
    }

    /// Number of classes.
    pub fn k(&self) -> usize {
        self.mat.cols()
    }

    /// Sets node `v`'s residual belief vector (must sum to 0).
    pub fn set_residual(&mut self, v: usize, residual: &[f64]) -> Result<(), BeliefError> {
        if v >= self.n() {
            return Err(BeliefError::NodeOutOfRange);
        }
        if residual.len() != self.k() {
            return Err(BeliefError::WrongArity);
        }
        let sum: f64 = residual.iter().sum();
        let scale = residual.iter().fold(1.0f64, |m, x| m.max(x.abs()));
        if sum.abs() > 1e-9 * scale {
            return Err(BeliefError::NotCentered);
        }
        self.mat.row_mut(v).copy_from_slice(residual);
        self.explicit[v] = residual.iter().any(|&x| x != 0.0);
        Ok(())
    }

    /// Labels node `v` with `class` using a centered one-hot vector of the
    /// given scale (see [`centered_one_hot`]).
    pub fn set_label(&mut self, v: usize, class: usize, scale: f64) -> Result<(), BeliefError> {
        if class >= self.k() {
            return Err(BeliefError::WrongArity);
        }
        let one_hot = centered_one_hot(self.k(), class, scale);
        self.set_residual(v, &one_hot)
    }

    /// Clears node `v` back to unlabeled.
    pub fn clear(&mut self, v: usize) -> Result<(), BeliefError> {
        if v >= self.n() {
            return Err(BeliefError::NodeOutOfRange);
        }
        self.mat.row_mut(v).fill(0.0);
        self.explicit[v] = false;
        Ok(())
    }

    /// `true` iff node `v` has explicit beliefs (non-zero residual row).
    pub fn is_explicit(&self, v: usize) -> bool {
        self.explicit[v]
    }

    /// The ids of all explicitly labeled nodes, ascending.
    pub fn explicit_nodes(&self) -> Vec<usize> {
        (0..self.n()).filter(|&v| self.explicit[v]).collect()
    }

    /// Number of explicitly labeled nodes.
    pub fn num_explicit(&self) -> usize {
        self.explicit.iter().filter(|&&e| e).count()
    }

    /// The underlying residual matrix `Ê`.
    pub fn residual_matrix(&self) -> &Mat {
        &self.mat
    }

    /// Residual belief row of node `v`.
    pub fn row(&self, v: usize) -> &[f64] {
        self.mat.row(v)
    }

    /// Returns a copy with all residuals scaled by `s` (Lemma 12: scaling
    /// `Ê` scales `B̂` and leaves standardized/top beliefs unchanged).
    pub fn scaled(&self, s: f64) -> Self {
        Self {
            mat: self.mat.scale(s),
            explicit: self.explicit.clone(),
        }
    }
}

/// Final (posterior) residual beliefs `B̂`, with the paper's read-out
/// operations: standardization ζ (Definition 11) and top-belief assignment
/// with ties (Problem 1).
#[derive(Clone, Debug, PartialEq)]
pub struct BeliefMatrix {
    mat: Mat,
}

impl BeliefMatrix {
    /// Wraps an `n × k` residual belief matrix.
    pub fn from_mat(mat: Mat) -> Self {
        Self { mat }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.mat.rows()
    }

    /// Number of classes.
    pub fn k(&self) -> usize {
        self.mat.cols()
    }

    /// The residual belief matrix.
    pub fn residual(&self) -> &Mat {
        &self.mat
    }

    /// Consumes self, returning the matrix.
    pub fn into_mat(self) -> Mat {
        self.mat
    }

    /// Residual belief row of node `v`.
    pub fn row(&self, v: usize) -> &[f64] {
        self.mat.row(v)
    }

    /// The standardized belief assignment `b̂' = ζ(b̂)` of node `v`.
    pub fn standardized(&self, v: usize) -> Vec<f64> {
        standardize(self.mat.row(v))
    }

    /// Standard deviation σ(b̂_v) — Fig. 4d tracks this as εH → 0.
    pub fn std_dev(&self, v: usize) -> f64 {
        population_std(self.mat.row(v))
    }

    /// The set of top classes of node `v`, with ties resolved by a relative
    /// tolerance: class `i` is a top belief iff
    /// `b_max − b_i ≤ rel_tol · max(|b_max|, tiny)`. An exactly zero row
    /// ties *all* classes — the read-out both for nodes unreachable from
    /// any labeled node and for exact SBP cancellations (a node adjacent to
    /// seeds of all `k` classes, where the centered coupling rows sum to
    /// 0): SBP's accumulation snaps within-rounding-error entries to exact
    /// zeros so those ties survive floating point (see
    /// [`crate::sbp`]'s `recompute_belief`).
    pub fn top_beliefs(&self, v: usize, rel_tol: f64) -> Vec<usize> {
        top_of_row(self.mat.row(v), rel_tol)
    }

    /// [`BeliefMatrix::top_beliefs`] for every node.
    pub fn top_belief_assignment(&self, rel_tol: f64) -> Vec<Vec<usize>> {
        (0..self.n())
            .map(|v| self.top_beliefs(v, rel_tol))
            .collect()
    }
}

/// Top-class set of a single residual belief row (see
/// [`BeliefMatrix::top_beliefs`]). A numerically zero row (below the
/// denormal floor) ties all classes.
pub fn top_of_row(row: &[f64], rel_tol: f64) -> Vec<usize> {
    let max_abs = row.iter().fold(0.0f64, |m, x| m.max(x.abs()));
    if max_abs < 1e-300 {
        return (0..row.len()).collect();
    }
    let max = row.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x));
    let thr = rel_tol * max_abs;
    row.iter()
        .enumerate()
        .filter(|&(_, &x)| max - x <= thr)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centered_one_hot_examples() {
        assert_eq!(centered_one_hot(3, 0, 1.0), vec![2.0, -1.0, -1.0]);
        assert_eq!(centered_one_hot(3, 2, 1.0), vec![-1.0, -1.0, 2.0]);
        assert_eq!(centered_one_hot(2, 1, 0.5), vec![-0.5, 0.5]);
        assert!(centered_one_hot(5, 3, 2.0).iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn explicit_bookkeeping() {
        let mut e = ExplicitBeliefs::new(4, 3);
        assert_eq!(e.num_explicit(), 0);
        e.set_label(2, 1, 1.0).unwrap();
        assert!(e.is_explicit(2));
        assert!(!e.is_explicit(0));
        assert_eq!(e.explicit_nodes(), vec![2]);
        assert_eq!(e.row(2), &[-1.0, 2.0, -1.0]);
        e.clear(2).unwrap();
        assert_eq!(e.num_explicit(), 0);
    }

    #[test]
    fn set_residual_validation() {
        let mut e = ExplicitBeliefs::new(2, 3);
        assert_eq!(
            e.set_residual(5, &[0.0; 3]),
            Err(BeliefError::NodeOutOfRange)
        );
        assert_eq!(e.set_residual(0, &[0.0; 2]), Err(BeliefError::WrongArity));
        assert_eq!(
            e.set_residual(0, &[1.0, 1.0, 1.0]),
            Err(BeliefError::NotCentered)
        );
        assert!(e.set_residual(0, &[0.1, -0.05, -0.05]).is_ok());
    }

    #[test]
    fn zero_residual_is_not_explicit() {
        let mut e = ExplicitBeliefs::new(2, 2);
        e.set_residual(1, &[0.0, 0.0]).unwrap();
        assert!(!e.is_explicit(1));
    }

    #[test]
    fn scaled_preserves_explicit_set() {
        let mut e = ExplicitBeliefs::new(3, 2);
        e.set_label(1, 0, 1.0).unwrap();
        let s = e.scaled(10.0);
        assert_eq!(s.explicit_nodes(), vec![1]);
        assert_eq!(s.row(1), &[10.0, -10.0]);
    }

    #[test]
    fn top_beliefs_unique_and_tied() {
        let b = BeliefMatrix::from_mat(Mat::from_rows(&[
            &[0.5, -0.2, -0.3],
            &[0.1, 0.1, -0.2],
            &[0.0, 0.0, 0.0],
        ]));
        assert_eq!(b.top_beliefs(0, 1e-9), vec![0]);
        assert_eq!(b.top_beliefs(1, 1e-9), vec![0, 1]);
        assert_eq!(b.top_beliefs(2, 1e-9), vec![0, 1, 2]); // zero row: all tied
    }

    /// The paper's observed near-tie: SBP `[1, 1, −2]·10⁻²` ties classes
    /// 0 and 1 while LinBP's `[1.0000000014, 1.0000000002, −2]·10⁻²`
    /// resolves to class 0 at tight tolerance — this is the documented
    /// source of SBP's precision dips in Fig. 7g.
    #[test]
    fn near_tie_behaviour() {
        let sbp_row = [1e-2, 1e-2, -2e-2];
        let linbp_row = [1.0000000014e-2, 1.0000000002e-2, -2.0000000016e-2];
        assert_eq!(top_of_row(&sbp_row, 1e-9), vec![0, 1]);
        assert_eq!(top_of_row(&linbp_row, 1e-12), vec![0]);
        // At a looser tolerance LinBP also reports the tie.
        assert_eq!(top_of_row(&linbp_row, 1e-6), vec![0, 1]);
    }

    #[test]
    fn standardization_and_std_dev() {
        let b = BeliefMatrix::from_mat(Mat::from_rows(&[&[4.0, -1.0, -1.0, -1.0, -1.0]]));
        assert_eq!(b.standardized(0), vec![2.0, -0.5, -0.5, -0.5, -0.5]);
        assert!((b.std_dev(0) - 2.0).abs() < 1e-12);
    }
}

//! LinBP and LinBP\* — the paper's core contribution (Theorem 4).
//!
//! Iterative updates (Eqs. 6/7):
//!
//! ```text
//! B̂(l+1) ← Ê + A·B̂(l)·Ĥ − D·B̂(l)·Ĥ²      (LinBP — with echo cancellation)
//! B̂(l+1) ← Ê + A·B̂(l)·Ĥ                   (LinBP* — without)
//! ```
//!
//! where `A` is the (weighted) adjacency matrix, `D = diag(d)` with
//! `d_s = Σ_t w(s,t)²` (Sect. 5.2) and `Ĥ` is the *scaled residual*
//! coupling matrix. Beliefs are computed directly from beliefs — no
//! messages — which is exactly why a LinBP iteration is one sparse
//! matrix × dense matrix product (`O(nnz·k + n·k²)`).
//!
//! Convergence is governed by Lemma 8 (ρ(Ĥ⊗A − Ĥ²⊗D) < 1); the iterative
//! process here reports divergence when belief magnitudes blow past a
//! guard threshold.

use crate::beliefs::{BeliefMatrix, ExplicitBeliefs};
use lsbp_linalg::{
    FixedPointOp, FixedPointSolver, IterationEvent, Mat, ParallelismConfig, StepOutcome,
    ToleranceNorm,
};
use lsbp_sparse::{CsrMatrix, FrontierState, FusedLinBpStep, PropagationOperator};

/// Options for [`linbp`] / [`linbp_star`].
#[derive(Clone, Copy, Debug)]
pub struct LinBpOptions {
    /// Maximum number of update rounds.
    pub max_iter: usize,
    /// Convergence threshold on the belief change (measured in `norm`);
    /// 0.0 runs exactly `max_iter` rounds (timing mode, like the
    /// paper's 5).
    pub tol: f64,
    /// Norm the convergence threshold is measured in (default: largest
    /// absolute entry change).
    pub norm: ToleranceNorm,
    /// Update damping `λ ∈ [0, 1)`: `B̂ ← (1−λ)·B̂_new + λ·B̂_old`. 0 (the
    /// default) is the paper's plain update; small values can rescue
    /// oscillating runs near the spectral threshold.
    pub damping: f64,
    /// Belief magnitude beyond which the run is declared divergent.
    pub divergence_guard: f64,
    /// Serial vs. pooled execution of the SpMM / dense kernels. Results
    /// are bitwise identical for every thread count; the default follows
    /// `LSBP_THREADS`.
    pub parallelism: ParallelismConfig,
}

impl Default for LinBpOptions {
    fn default() -> Self {
        Self {
            max_iter: 200,
            tol: 1e-12,
            norm: ToleranceNorm::MaxAbs,
            damping: 0.0,
            divergence_guard: 1e12,
            parallelism: ParallelismConfig::default(),
        }
    }
}

impl LinBpOptions {
    /// The [`FixedPointSolver`] these options describe.
    pub(crate) fn solver(&self) -> FixedPointSolver {
        FixedPointSolver::new(self.max_iter, self.tol)
            .with_norm(self.norm)
            .with_damping(self.damping)
            .with_divergence_guard(self.divergence_guard)
    }
}

/// Result of a LinBP/LinBP\* run.
#[derive(Clone, Debug)]
pub struct LinBpResult {
    /// Final residual beliefs `B̂`.
    pub beliefs: BeliefMatrix,
    /// Whether the update met `tol` before `max_iter`.
    pub converged: bool,
    /// `true` when the divergence guard tripped (spectral radius ≥ 1).
    pub diverged: bool,
    /// Rounds executed.
    pub iterations: usize,
    /// Largest absolute belief change in the final round.
    pub final_delta: f64,
    /// Rows recomputed across all rounds (active-frontier execution;
    /// equals `n × iterations` with the frontier off).
    pub rows_active: u64,
    /// Rows skipped across all rounds because their inputs were bitwise
    /// unchanged (always 0 with the frontier off).
    pub rows_skipped: u64,
}

/// Errors from the LinBP family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinBpError {
    /// Adjacency and explicit-belief node counts differ.
    DimensionMismatch,
    /// Residual coupling arity differs from the beliefs' `k`.
    CouplingArityMismatch,
}

impl std::fmt::Display for LinBpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinBpError::DimensionMismatch => write!(f, "adjacency/beliefs node count mismatch"),
            LinBpError::CouplingArityMismatch => write!(f, "coupling arity mismatch"),
        }
    }
}

impl std::error::Error for LinBpError {}

/// Runs **LinBP** (Eq. 6, with echo cancellation).
///
/// `h_residual` is the scaled residual coupling matrix `Ĥ = εH·Ĥo`.
///
/// When `opts.parallelism` carries a shard count above 1 the adjacency is
/// first re-sharded into that many nnz-balanced row-range blocks
/// ([`lsbp_sparse::ShardedCsr`]) and the solve streams through them —
/// bitwise identical to the monolithic path at any shard count. Callers
/// that already hold a sharded operator should use [`linbp_on`] and skip
/// the conversion.
pub fn linbp(
    adj: &CsrMatrix,
    explicit: &ExplicitBeliefs,
    h_residual: &Mat,
    opts: &LinBpOptions,
) -> Result<LinBpResult, LinBpError> {
    run(adj, explicit, h_residual, opts, true)
}

/// Runs **LinBP\*** (Eq. 7, echo cancellation dropped). Honors the shard
/// knob like [`linbp`].
pub fn linbp_star(
    adj: &CsrMatrix,
    explicit: &ExplicitBeliefs,
    h_residual: &Mat,
    opts: &LinBpOptions,
) -> Result<LinBpResult, LinBpError> {
    run(adj, explicit, h_residual, opts, false)
}

/// [`linbp`] against any [`PropagationOperator`] — the generic engine
/// entry point. The operator is used as given (no re-sharding, whatever
/// `opts.parallelism.shards()` says); results are bitwise identical for
/// every backend honoring the operator contract.
pub fn linbp_on<A: PropagationOperator + ?Sized>(
    adj: &A,
    explicit: &ExplicitBeliefs,
    h_residual: &Mat,
    opts: &LinBpOptions,
) -> Result<LinBpResult, LinBpError> {
    run_observed_on(adj, explicit, h_residual, opts, true, |_| {})
}

/// [`linbp_star`] against any [`PropagationOperator`] (see [`linbp_on`]).
pub fn linbp_star_on<A: PropagationOperator + ?Sized>(
    adj: &A,
    explicit: &ExplicitBeliefs,
    h_residual: &Mat,
    opts: &LinBpOptions,
) -> Result<LinBpResult, LinBpError> {
    run_observed_on(adj, explicit, h_residual, opts, false, |_| {})
}

/// Reusable buffers for [`linbp_step`]: the SpMM result, the fused `D·B`
/// product and the `(D·B)·Ĥ²` echo term — all `n × k`, allocated once per
/// run instead of once per iteration.
#[derive(Clone, Debug)]
pub struct LinBpScratch {
    ab: Mat,
    db: Mat,
    tmp: Mat,
}

impl LinBpScratch {
    /// Allocates scratch space for an `n`-node, `k`-class system.
    pub fn new(n: usize, k: usize) -> Self {
        Self {
            ab: Mat::zeros(n, k),
            db: Mat::zeros(n, k),
            tmp: Mat::zeros(n, k),
        }
    }
}

/// Applies one update step `out = Ê + A·B·Ĥ [− D·B·Ĥ²]`, re-using the
/// provided scratch buffers for every intermediate (no per-step
/// allocation). Exposed for the per-iteration instrumentation of Fig. 7d
/// and the closed-form Jacobi solver.
///
/// This is the **unfused reference** composition (SpMM, dense `·Ĥ`,
/// element-wise add/sub as separate passes). The solver path runs
/// [`CsrMatrix::linbp_step_fused_with`] instead — one row-partitioned,
/// cache-resident pass that is bitwise identical to this composition
/// (property-tested in `tests/fused_linbp.rs`) but avoids re-streaming
/// the `n × k` intermediates.
#[allow(clippy::too_many_arguments)] // mirrors the terms of Eq. 6 one-to-one
pub fn linbp_step<A: PropagationOperator + ?Sized>(
    adj: &A,
    e_hat: &Mat,
    b: &Mat,
    h: &Mat,
    h2: Option<&Mat>,
    degrees: &[f64],
    scratch: &mut LinBpScratch,
    out: &mut Mat,
    cfg: &ParallelismConfig,
) {
    // ab = A·B   (n×k);   out = Ê + ab·Ĥ
    adj.spmm_into_with(b, &mut scratch.ab, cfg);
    scratch.ab.matmul_into_with(h, out, cfg);
    out.add_assign(e_hat);
    if let Some(h2) = h2 {
        // out -= (D·B)·Ĥ² — row s of D·B is d_s · b_s, scaled directly
        // into the reusable buffer instead of a fresh `Mat` per step.
        b.scaled_rows_into(degrees, &mut scratch.db);
        scratch.db.matmul_into_with(h2, &mut scratch.tmp, cfg);
        out.sub_assign(&scratch.tmp);
    }
}

/// The LinBP update as a [`FixedPointOp`], backed by the fused kernel
/// ([`CsrMatrix::linbp_step_fused_with`]): one row-partitioned pass per
/// iteration computes the update, the damping blend and the max-abs
/// residual together; only the belief double buffer persists between
/// rounds, so no iteration allocates `n × k` scratch at all.
struct LinBpIteration<'a, A: PropagationOperator + ?Sized> {
    adj: &'a A,
    e_hat: &'a Mat,
    h: &'a Mat,
    h2: Option<&'a Mat>,
    degrees: &'a [f64],
    b: Mat,
    next: Mat,
    cfg: ParallelismConfig,
    /// Active-frontier change tracking (see `lsbp_sparse::frontier`);
    /// `None` forces full recomputation every round (`with_frontier(false)`
    /// / `LSBP_FRONTIER=off`). Outputs are bitwise identical either way.
    frontier: Option<FrontierState>,
}

impl<A: PropagationOperator + ?Sized> FixedPointOp for LinBpIteration<'_, A> {
    fn step(&mut self, solver: &FixedPointSolver, _iteration: usize) -> StepOutcome {
        let mut fused_delta = [0.0f64];
        let fstep = FusedLinBpStep {
            e_hat: self.e_hat,
            h: self.h,
            h2: self.h2,
            degrees: self.degrees,
            damping: solver.damping,
        };
        let counters = match self.frontier.as_mut() {
            Some(state) => {
                let mut fr = state.begin(None);
                self.adj.linbp_step_fused_frontier_with(
                    &self.b,
                    &fstep,
                    &mut self.next,
                    &mut fused_delta,
                    &mut fr,
                    &self.cfg,
                );
                Some((fr.rows_active, fr.rows_skipped))
            }
            None => {
                self.adj.linbp_step_fused_with(
                    &self.b,
                    &fstep,
                    &mut self.next,
                    &mut fused_delta,
                    &self.cfg,
                );
                None
            }
        };
        let delta = match solver.norm {
            ToleranceNorm::MaxAbs => fused_delta[0],
            // L2 is deliberately *not* fused: summing per-row-block
            // partials would tie the total to the partition (thread
            // count); the flat fixed-order pass keeps it deterministic.
            // Frontier-skipped rows hold bit-identical values in both
            // buffers, so their terms are exactly what a recomputation
            // would contribute — the pass needs no frontier awareness.
            ToleranceNorm::L2 => self.next.l2_diff(&self.b),
        };
        std::mem::swap(&mut self.b, &mut self.next);
        if let (Some(state), Some((active, skipped))) = (self.frontier.as_mut(), counters) {
            state.commit(active, skipped);
        }
        StepOutcome::proceed(delta)
    }

    fn magnitude(&self) -> f64 {
        self.b.max_abs()
    }
}

fn run(
    adj: &CsrMatrix,
    explicit: &ExplicitBeliefs,
    h_residual: &Mat,
    opts: &LinBpOptions,
    echo: bool,
) -> Result<LinBpResult, LinBpError> {
    run_observed(adj, explicit, h_residual, opts, echo, |_| {})
}

/// [`linbp`] / [`linbp_star`] (`echo` selects Eq. 6 vs. Eq. 7) with a
/// per-iteration observer: `observer` fires after every update round with
/// the round number and belief delta — the instrumentation hook behind
/// the Fig. 7d per-iteration timing harness.
pub fn linbp_observed(
    adj: &CsrMatrix,
    explicit: &ExplicitBeliefs,
    h_residual: &Mat,
    opts: &LinBpOptions,
    echo: bool,
    observer: impl FnMut(&IterationEvent),
) -> Result<LinBpResult, LinBpError> {
    run_observed(adj, explicit, h_residual, opts, echo, observer)
}

/// The monolithic-input front door: applies the shard knob (re-sharding
/// the CSR when `opts.parallelism.shards() > 1`), then runs the generic
/// engine.
fn run_observed(
    adj: &CsrMatrix,
    explicit: &ExplicitBeliefs,
    h_residual: &Mat,
    opts: &LinBpOptions,
    echo: bool,
    observer: impl FnMut(&IterationEvent),
) -> Result<LinBpResult, LinBpError> {
    crate::with_operator(adj, &opts.parallelism, |op| {
        run_observed_on(op, explicit, h_residual, opts, echo, observer)
    })
}

/// The solver core, generic over the storage backend.
fn run_observed_on<A: PropagationOperator + ?Sized>(
    adj: &A,
    explicit: &ExplicitBeliefs,
    h_residual: &Mat,
    opts: &LinBpOptions,
    echo: bool,
    observer: impl FnMut(&IterationEvent),
) -> Result<LinBpResult, LinBpError> {
    let n = explicit.n();
    let k = explicit.k();
    if adj.n_rows() != n || adj.n_cols() != n {
        return Err(LinBpError::DimensionMismatch);
    }
    if h_residual.rows() != k || h_residual.cols() != k {
        return Err(LinBpError::CouplingArityMismatch);
    }

    let e_hat = explicit.residual_matrix();
    let h2 = if echo {
        Some(h_residual.matmul(h_residual))
    } else {
        None
    };
    let degrees = if echo {
        adj.squared_weight_degrees()
    } else {
        vec![0.0; n]
    };

    // B̂(0) = Ê (starting from the explicit beliefs, like Algorithm 1).
    let mut op = LinBpIteration {
        adj,
        e_hat,
        h: h_residual,
        h2: h2.as_ref(),
        degrees: &degrees,
        b: e_hat.clone(),
        next: Mat::zeros(n, k),
        cfg: opts.parallelism,
        frontier: opts
            .parallelism
            .frontier()
            .then(|| FrontierState::new(adj.frontier_plan())),
    };
    let outcome = opts.solver().run_observed(&mut op, observer);

    let (rows_active, rows_skipped) = op
        .frontier
        .as_ref()
        .map(|s| (s.rows_active, s.rows_skipped))
        .unwrap_or(((n * outcome.iterations) as u64, 0));
    Ok(LinBpResult {
        beliefs: BeliefMatrix::from_mat(op.b),
        converged: outcome.converged,
        diverged: outcome.diverged,
        iterations: outcome.iterations,
        final_delta: outcome.final_delta,
        rows_active,
        rows_skipped,
    })
}

/// Incremental LinBP under explicit-belief changes — the Sect. 8 "future
/// work" item (LINVIEW-style maintenance), solved here by linearity:
///
/// Since `vec(B̂) = (I − M)⁻¹·vec(Ê)` is *linear* in `Ê` (Proposition 7),
/// a change `Ê → Ê + ΔÊ` changes the solution by exactly the LinBP
/// fixpoint of `ΔÊ` alone:
///
/// ```text
/// B̂(Ê + ΔÊ) = B̂(Ê) + B̂(ΔÊ)
/// ```
///
/// So the update runs LinBP with the (typically very sparse) delta as the
/// only explicit beliefs and adds the result onto the previous beliefs —
/// no recomputation of the full system, and updates compose/commute. The
/// convergence criteria are unchanged (they depend only on `A` and `Ĥ`).
///
/// Note the contrast with ΔSBP (Algorithm 3): SBP needs bookkeeping
/// (geodesic numbers) because its semantics is non-linear in the label
/// *set*; LinBP's linearity makes incremental maintenance exact and
/// stateless.
pub fn linbp_update(
    adj: &CsrMatrix,
    previous: &BeliefMatrix,
    delta_explicit: &ExplicitBeliefs,
    h_residual: &Mat,
    opts: &LinBpOptions,
    echo: bool,
) -> Result<LinBpResult, LinBpError> {
    if previous.n() != delta_explicit.n() || previous.k() != delta_explicit.k() {
        return Err(LinBpError::DimensionMismatch);
    }
    let delta_run = run(adj, delta_explicit, h_residual, opts, echo)?;
    if delta_run.diverged {
        return Ok(delta_run);
    }
    let mut updated = previous.residual().clone();
    updated.add_assign(delta_run.beliefs.residual());
    Ok(LinBpResult {
        beliefs: BeliefMatrix::from_mat(updated),
        ..delta_run
    })
}

/// The binary-case (`k = 2`) reduction of Appendix E: LinBP specializes to
/// the FABP-style scalar system
/// `b̂ = (I − c₁·A + c₂·D)⁻¹ ê` with `c₁ = 2ĥ/(1−4ĥ²)`, `c₂ = 4ĥ²/(1−4ĥ²)`,
/// where `ĥ` is the scalar residual (`Ĥ = [[ĥ, −ĥ], [−ĥ, ĥ]]`) and `b̂`/`ê`
/// hold the first belief dimension per node.
pub mod binary {
    /// The coefficients `(c₁, c₂)` of the Appendix E scalar system.
    pub fn fabp_coefficients(h_hat: f64) -> (f64, f64) {
        let denom = 1.0 - 4.0 * h_hat * h_hat;
        (2.0 * h_hat / denom, 4.0 * h_hat * h_hat / denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coupling::CouplingMatrix;
    use lsbp_graph::generators::{cycle, fig5c_torus, path};

    fn seed(n: usize, k: usize) -> ExplicitBeliefs {
        let mut e = ExplicitBeliefs::new(n, k);
        e.set_label(0, 0, 0.1).unwrap();
        e
    }

    #[test]
    fn converges_on_path_homophily() {
        let adj = path(6).adjacency();
        let e = seed(6, 2);
        let h = CouplingMatrix::fig1a().unwrap().scaled_residual(0.2);
        let r = linbp(&adj, &e, &h, &LinBpOptions::default()).unwrap();
        assert!(r.converged && !r.diverged);
        for v in 0..6 {
            assert_eq!(r.beliefs.top_beliefs(v, 1e-9), vec![0], "node {v}");
        }
    }

    #[test]
    fn heterophily_alternates() {
        let adj = path(4).adjacency();
        let e = seed(4, 2);
        let h = CouplingMatrix::fig1b().unwrap().scaled_residual(0.2);
        let r = linbp(&adj, &e, &h, &LinBpOptions::default()).unwrap();
        assert!(r.converged);
        assert_eq!(r.beliefs.top_beliefs(0, 1e-9), vec![0]);
        assert_eq!(r.beliefs.top_beliefs(1, 1e-9), vec![1]);
        assert_eq!(r.beliefs.top_beliefs(2, 1e-9), vec![0]);
        assert_eq!(r.beliefs.top_beliefs(3, 1e-9), vec![1]);
    }

    /// The fixed point satisfies the implicit equation
    /// `B̂ = Ê + A·B̂·Ĥ − D·B̂·Ĥ²` (Eq. 4).
    #[test]
    fn fixed_point_satisfies_equation() {
        let adj = fig5c_torus().adjacency();
        let mut e = ExplicitBeliefs::new(8, 3);
        e.set_residual(0, &[2.0, -1.0, -1.0]).unwrap();
        e.set_residual(1, &[-1.0, 2.0, -1.0]).unwrap();
        e.set_residual(2, &[-1.0, -1.0, 2.0]).unwrap();
        let coupling = CouplingMatrix::fig1c().unwrap();
        let h = coupling.scaled_residual(0.2);
        let r = linbp(
            &adj,
            &e,
            &h,
            &LinBpOptions {
                max_iter: 2000,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.converged);
        let b = r.beliefs.residual();
        // Recompute the RHS and compare.
        let h2 = h.matmul(&h);
        let degrees = adj.squared_weight_degrees();
        let mut scratch = LinBpScratch::new(8, 3);
        let mut rhs = Mat::zeros(8, 3);
        linbp_step(
            &adj,
            e.residual_matrix(),
            b,
            &h,
            Some(&h2),
            &degrees,
            &mut scratch,
            &mut rhs,
            &lsbp_linalg::ParallelismConfig::serial(),
        );
        assert!(b.max_abs_diff(&rhs) < 1e-9);
    }

    /// Above the spectral threshold, LinBP diverges and says so.
    #[test]
    fn divergence_detected() {
        let adj = cycle(8).adjacency();
        let e = seed(8, 2);
        // ρ(A) = 2 for a cycle; residual fig1a at scale 1.0 has ρ(Ĥ) = 0.6
        // → ρ = 1.2 > 1: must diverge.
        let h = CouplingMatrix::fig1a().unwrap().scaled_residual(1.0);
        let r = linbp_star(
            &adj,
            &e,
            &h,
            &LinBpOptions {
                max_iter: 2000,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.diverged);
        assert!(!r.converged);
    }

    /// Lemma 12: scaling Ê scales B̂ linearly.
    #[test]
    fn scaling_explicit_scales_beliefs() {
        let adj = path(5).adjacency();
        let e = seed(5, 2);
        let h = CouplingMatrix::fig1a().unwrap().scaled_residual(0.2);
        let opts = LinBpOptions {
            max_iter: 5000,
            tol: 1e-14,
            ..Default::default()
        };
        let r1 = linbp(&adj, &e, &h, &opts).unwrap();
        let r2 = linbp(&adj, &e.scaled(7.0), &h, &opts).unwrap();
        let scaled = r1.beliefs.residual().scale(7.0);
        assert!(scaled.max_abs_diff(r2.beliefs.residual()) < 1e-8);
    }

    /// LinBP* equals LinBP with the echo term removed: on a star graph with
    /// tiny εH both give nearly identical labels but different magnitudes.
    #[test]
    fn star_vs_echo_differ_in_magnitude() {
        let adj = lsbp_graph::generators::star(6).adjacency();
        let e = seed(6, 2);
        let h = CouplingMatrix::fig1a().unwrap().scaled_residual(0.2);
        let with_echo = linbp(&adj, &e, &h, &LinBpOptions::default()).unwrap();
        let without = linbp_star(&adj, &e, &h, &LinBpOptions::default()).unwrap();
        assert!(with_echo.converged && without.converged);
        assert!(
            with_echo
                .beliefs
                .residual()
                .max_abs_diff(without.beliefs.residual())
                > 1e-9,
            "echo cancellation must change magnitudes"
        );
        assert_eq!(
            with_echo.beliefs.top_belief_assignment(1e-9),
            without.beliefs.top_belief_assignment(1e-9)
        );
    }

    #[test]
    fn timing_mode_runs_fixed_rounds() {
        let adj = path(4).adjacency();
        let e = seed(4, 2);
        let h = CouplingMatrix::fig1a().unwrap().scaled_residual(0.1);
        let r = linbp(
            &adj,
            &e,
            &h,
            &LinBpOptions {
                max_iter: 5,
                tol: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.iterations, 5);
    }

    #[test]
    fn error_cases() {
        let adj = path(3).adjacency();
        let e = ExplicitBeliefs::new(4, 2);
        let h = CouplingMatrix::fig1a().unwrap().scaled_residual(0.1);
        assert!(matches!(
            linbp(&adj, &e, &h, &LinBpOptions::default()),
            Err(LinBpError::DimensionMismatch)
        ));
        let e3 = ExplicitBeliefs::new(3, 3);
        assert!(matches!(
            linbp(&adj, &e3, &h, &LinBpOptions::default()),
            Err(LinBpError::CouplingArityMismatch)
        ));
    }

    /// Weighted graphs: a heavier edge pulls the label harder (Sect. 5.2).
    #[test]
    fn weighted_edges_scale_influence() {
        // Node 1 is connected to seeds 0 (weight 3) and 2 (weight 1) with
        // opposite labels; the heavier neighbor wins.
        let mut g = lsbp_graph::Graph::new(3);
        g.add_edge(0, 1, 3.0);
        g.add_edge(1, 2, 1.0);
        let adj = g.adjacency();
        let mut e = ExplicitBeliefs::new(3, 2);
        e.set_label(0, 0, 0.1).unwrap();
        e.set_label(2, 1, 0.1).unwrap();
        let h = CouplingMatrix::fig1a().unwrap().scaled_residual(0.05);
        let r = linbp(&adj, &e, &h, &LinBpOptions::default()).unwrap();
        assert!(r.converged);
        assert_eq!(r.beliefs.top_beliefs(1, 1e-9), vec![0]);
    }

    /// Incremental LinBP (linearity) equals recomputation from scratch.
    #[test]
    fn incremental_update_matches_scratch() {
        let adj = lsbp_graph::generators::erdos_renyi_gnm(40, 100, 6).adjacency();
        let coupling = CouplingMatrix::fig1c().unwrap();
        let h = coupling.scaled_residual(0.03);
        let opts = LinBpOptions {
            max_iter: 50_000,
            tol: 1e-14,
            ..Default::default()
        };
        let mut base = ExplicitBeliefs::new(40, 3);
        base.set_label(0, 0, 1.0).unwrap();
        base.set_label(9, 1, 1.0).unwrap();
        let prev = linbp(&adj, &base, &h, &opts).unwrap();
        assert!(prev.converged);

        // Delta: one new label + one label *change* (expressed as the
        // residual difference new − old).
        let mut delta = ExplicitBeliefs::new(40, 3);
        delta.set_label(25, 2, 1.0).unwrap();
        let old_row: Vec<f64> = base.row(9).to_vec();
        let new_row = crate::beliefs::centered_one_hot(3, 2, 1.0);
        let diff: Vec<f64> = new_row.iter().zip(&old_row).map(|(n, o)| n - o).collect();
        delta.set_residual(9, &diff).unwrap();

        let incremental = linbp_update(&adj, &prev.beliefs, &delta, &h, &opts, true).unwrap();

        let mut full = base.clone();
        full.set_label(25, 2, 1.0).unwrap();
        full.set_label(9, 2, 1.0).unwrap();
        let scratch = linbp(&adj, &full, &h, &opts).unwrap();
        assert!(
            incremental
                .beliefs
                .residual()
                .max_abs_diff(scratch.beliefs.residual())
                < 1e-9
        );
    }

    /// Incremental updates compose: applying two deltas sequentially equals
    /// applying their sum.
    #[test]
    fn incremental_updates_compose() {
        let adj = lsbp_graph::generators::grid_2d(5, 5).adjacency();
        let h = CouplingMatrix::fig1a().unwrap().scaled_residual(0.1);
        let opts = LinBpOptions {
            max_iter: 50_000,
            tol: 1e-14,
            ..Default::default()
        };
        let base = ExplicitBeliefs::new(25, 2);
        let prev = linbp(&adj, &base, &h, &opts).unwrap();
        let mut d1 = ExplicitBeliefs::new(25, 2);
        d1.set_label(3, 0, 1.0).unwrap();
        let mut d2 = ExplicitBeliefs::new(25, 2);
        d2.set_label(21, 1, 1.0).unwrap();
        let seq = {
            let s1 = linbp_update(&adj, &prev.beliefs, &d1, &h, &opts, true).unwrap();
            linbp_update(&adj, &s1.beliefs, &d2, &h, &opts, true).unwrap()
        };
        let mut both = ExplicitBeliefs::new(25, 2);
        both.set_label(3, 0, 1.0).unwrap();
        both.set_label(21, 1, 1.0).unwrap();
        let combined = linbp_update(&adj, &prev.beliefs, &both, &h, &opts, true).unwrap();
        assert!(
            seq.beliefs
                .residual()
                .max_abs_diff(combined.beliefs.residual())
                < 1e-9
        );
    }

    #[test]
    fn binary_coefficients() {
        let (c1, c2) = binary::fabp_coefficients(0.1);
        assert!((c1 - 0.2 / 0.96).abs() < 1e-12);
        assert!((c2 - 0.04 / 0.96).abs() < 1e-12);
    }
}

//! Random walk with restart (RWR / personalized PageRank) — the main
//! guilt-by-association *alternative* the paper's related-work section
//! lists next to BP and SSL (Sect. 8, references [4, 17, 44]).
//!
//! Included as a comparison baseline: per class `c`, a walker restarts
//! into the nodes explicitly labeled `c` and diffuses over the
//! column-normalized adjacency; a node's score vector across classes plays
//! the role of beliefs. RWR handles homophily only — it has no coupling
//! matrix, which is precisely the modeling gap LinBP fills (heterophily
//! and general couplings). The tests document that gap: RWR matches LinBP
//! under homophily and *fails* under heterophily.

use crate::beliefs::{BeliefMatrix, ExplicitBeliefs};
use lsbp_linalg::{
    FixedPointOp, FixedPointSolver, Mat, ParallelismConfig, StepOutcome, ToleranceNorm,
};
use lsbp_sparse::{CsrMatrix, PropagationOperator};

/// Options for [`rwr`].
#[derive(Clone, Copy, Debug)]
pub struct RwrOptions {
    /// Restart probability `α ∈ (0, 1]` (typical: 0.15).
    pub restart: f64,
    /// Maximum power iterations.
    pub max_iter: usize,
    /// Convergence threshold on the score change (measured in `norm`).
    pub tol: f64,
    /// Norm the convergence threshold is measured in (default: largest
    /// absolute score change).
    pub norm: ToleranceNorm,
    /// Serial vs. pooled execution of the diffusion kernel. Results are
    /// bitwise identical for every thread count; the default follows
    /// `LSBP_THREADS`.
    pub parallelism: ParallelismConfig,
}

impl Default for RwrOptions {
    fn default() -> Self {
        Self {
            restart: 0.15,
            max_iter: 200,
            tol: 1e-12,
            norm: ToleranceNorm::MaxAbs,
            parallelism: ParallelismConfig::default(),
        }
    }
}

/// Result of an RWR run.
#[derive(Clone, Debug)]
pub struct RwrResult {
    /// Per-node, per-class steady-state visiting scores, re-centered to
    /// residual form (rows sum to 0) so the standard read-outs
    /// (standardization, top-belief sets, metrics) apply unchanged.
    pub beliefs: BeliefMatrix,
    /// Whether every class's walk met `tol`.
    pub converged: bool,
    /// Iterations of the slowest class.
    pub iterations: usize,
}

/// Errors from [`rwr`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RwrError {
    /// Adjacency/beliefs node count mismatch.
    DimensionMismatch,
    /// Restart probability outside `(0, 1]`.
    BadRestart,
    /// Some class has no labeled node (its restart distribution would be
    /// undefined).
    EmptyClass(usize),
}

impl std::fmt::Display for RwrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RwrError::DimensionMismatch => write!(f, "adjacency/beliefs node count mismatch"),
            RwrError::BadRestart => write!(f, "restart probability must be in (0, 1]"),
            RwrError::EmptyClass(c) => write!(f, "class {c} has no labeled node"),
        }
    }
}

impl std::error::Error for RwrError {}

/// Restart distributions for one seed-set: per class, positive residual
/// mass of labeled nodes, normalized to 1. Shared by [`rwr`] and the
/// batched [`crate::batch::rwr_batch`] so both build byte-identical
/// distributions (and raise the same [`RwrError::EmptyClass`]).
pub(crate) fn restart_distribution(explicit: &ExplicitBeliefs) -> Result<Mat, RwrError> {
    let n = explicit.n();
    let k = explicit.k();
    let mut restart_dist = Mat::zeros(n, k);
    let mut class_mass = vec![0.0f64; k];
    for v in explicit.explicit_nodes() {
        for (c, &x) in explicit.row(v).iter().enumerate() {
            if x > 0.0 {
                restart_dist[(v, c)] = x;
                class_mass[c] += x;
            }
        }
    }
    for (c, &mass) in class_mass.iter().enumerate() {
        if mass == 0.0 {
            return Err(RwrError::EmptyClass(c));
        }
        for v in 0..n {
            restart_dist[(v, c)] /= mass;
        }
    }
    Ok(restart_dist)
}

/// One class's random walk with restart as a [`FixedPointOp`]: scale by
/// inverse degrees, diffuse, blend with the restart distribution,
/// renormalize the leaked mass. The scale/diffuse scratch is borrowed
/// from the caller so all `k` walks share one allocation.
///
/// The diffusion runs through the *one-column SpMM* kernel rather than
/// SpMV: SpMV's row dot product accumulates in the reassociated 4-lane
/// order, while the batched solver's stacked diffusion is an SpMM whose
/// per-element sums stay in CSR entry order — routing the single walk
/// through the same SpMM kernel is what keeps [`crate::batch::rwr_batch`]
/// bitwise identical to `q` standalone runs.
struct RwrWalk<'a, A: PropagationOperator + ?Sized> {
    adj: &'a A,
    degrees: &'a [f64],
    restart_col: Vec<f64>,
    restart: f64,
    x: Vec<f64>,
    scaled: &'a mut Mat,
    diffused: &'a mut Mat,
    cfg: &'a ParallelismConfig,
}

impl<A: PropagationOperator + ?Sized> FixedPointOp for RwrWalk<'_, A> {
    fn step(&mut self, solver: &FixedPointSolver, _iteration: usize) -> StepOutcome {
        let n = self.x.len();
        for v in 0..n {
            self.scaled.as_mut_slice()[v] = if self.degrees[v] > 0.0 {
                self.x[v] / self.degrees[v]
            } else {
                0.0
            };
        }
        self.adj
            .spmm_into_with(self.scaled, self.diffused, self.cfg);
        let diffused = self.diffused.as_slice();
        let mut delta = 0.0f64;
        for ((x, &d), &rc) in self.x.iter_mut().zip(diffused).zip(&self.restart_col) {
            let next = (1.0 - self.restart) * d + self.restart * rc;
            match solver.norm {
                ToleranceNorm::MaxAbs => delta = delta.max((next - *x).abs()),
                ToleranceNorm::L2 => delta += (next - *x) * (next - *x),
            }
            *x = next;
        }
        if solver.norm == ToleranceNorm::L2 {
            delta = delta.sqrt();
        }
        // Dangling nodes leak probability mass; renormalize so classes
        // stay comparable.
        let mass: f64 = self.x.iter().sum();
        if mass > 0.0 {
            self.x.iter_mut().for_each(|v| *v /= mass);
        }
        StepOutcome::proceed(delta)
    }
}

/// Runs one RWR per class, restarting into that class's labeled nodes.
///
/// Labels are read from `explicit` as the per-node argmax of the residual
/// row (the usual one-hot labeling); mixed/soft labels contribute to every
/// class with positive residual mass. Honors the shard knob on
/// `opts.parallelism` like [`crate::linbp::linbp`].
pub fn rwr(
    adj: &CsrMatrix,
    explicit: &ExplicitBeliefs,
    opts: &RwrOptions,
) -> Result<RwrResult, RwrError> {
    crate::with_operator(adj, &opts.parallelism, |op| rwr_on(op, explicit, opts))
}

/// [`rwr`] against any [`PropagationOperator`] — the operator is used as
/// given (no re-sharding).
pub fn rwr_on<A: PropagationOperator + ?Sized>(
    adj: &A,
    explicit: &ExplicitBeliefs,
    opts: &RwrOptions,
) -> Result<RwrResult, RwrError> {
    let n = explicit.n();
    let k = explicit.k();
    if adj.n_rows() != n || adj.n_cols() != n {
        return Err(RwrError::DimensionMismatch);
    }
    if !(opts.restart > 0.0 && opts.restart <= 1.0) {
        return Err(RwrError::BadRestart);
    }

    let restart_dist = restart_distribution(explicit)?;

    // Random-walk transition: column-stochastic W(t, s) = w(s,t)/deg(s).
    // We apply it matrix-free: (W x)(t) = Σ_s w(s,t)·x(s)/deg(s); with a
    // symmetric adjacency this is one diffusion over x/deg (an n×1 SpMM
    // — see the RwrWalk docs for why SpMM rather than SpMV).
    let degrees = adj.row_sums();
    let mut scores = restart_dist.clone();
    let mut scaled = Mat::zeros(n, 1);
    let mut diffused = Mat::zeros(n, 1);
    let mut converged = true;
    let mut worst_iters = 0usize;
    let solver = FixedPointSolver::new(opts.max_iter, opts.tol).with_norm(opts.norm);
    for c in 0..k {
        let mut op = RwrWalk {
            adj,
            degrees: &degrees,
            restart_col: restart_dist.col(c),
            restart: opts.restart,
            x: scores.col(c),
            scaled: &mut scaled,
            diffused: &mut diffused,
            cfg: &opts.parallelism,
        };
        let outcome = solver.run(&mut op);
        let x = op.x;
        converged &= outcome.converged;
        worst_iters = worst_iters.max(outcome.iterations);
        for v in 0..n {
            scores[(v, c)] = x[v];
        }
    }

    // Residual form: center each row (so ties/standardization read-outs
    // work); rows that received no mass stay all-zero (all-tie).
    let mut residual = Mat::zeros(n, k);
    for v in 0..n {
        let row = scores.row(v);
        let mean: f64 = row.iter().sum::<f64>() / k as f64;
        if row.iter().any(|&x| x > 0.0) {
            for (c, &x) in row.iter().enumerate() {
                residual[(v, c)] = x - mean;
            }
        }
    }
    Ok(RwrResult {
        beliefs: BeliefMatrix::from_mat(residual),
        converged,
        iterations: worst_iters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coupling::CouplingMatrix;
    use crate::linbp::{linbp, LinBpOptions};
    use lsbp_graph::generators::path;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn two_seeds(n: usize) -> ExplicitBeliefs {
        let mut e = ExplicitBeliefs::new(n, 2);
        e.set_label(0, 0, 1.0).unwrap();
        e.set_label(n - 1, 1, 1.0).unwrap();
        e
    }

    #[test]
    fn path_proximity() {
        let adj = path(7).adjacency();
        let e = two_seeds(7);
        let r = rwr(&adj, &e, &RwrOptions::default()).unwrap();
        assert!(r.converged);
        // Nodes nearer seed 0 lean class 0 and vice versa.
        assert_eq!(r.beliefs.top_beliefs(1, 1e-9), vec![0]);
        assert_eq!(r.beliefs.top_beliefs(5, 1e-9), vec![1]);
        // Rows are centered.
        for v in 0..7 {
            assert!(r.beliefs.row(v).iter().sum::<f64>().abs() < 1e-9);
        }
    }

    /// Under homophily, RWR and LinBP agree on most labels — the related-
    /// work claim that both are reasonable guilt-by-association methods.
    /// Uses a planted two-community graph (dense blocks, sparse cross
    /// edges) so there is real structure for both methods to find.
    #[test]
    fn matches_linbp_under_homophily() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut g = lsbp_graph::Graph::new(120);
        let mut seen = std::collections::HashSet::new();
        let mut add = |g: &mut lsbp_graph::Graph, s: usize, t: usize| {
            if s != t && seen.insert((s.min(t), s.max(t))) {
                g.add_edge_unweighted(s, t);
            }
        };
        for _ in 0..300 {
            let (s, t) = (rng.gen_range(0..60), rng.gen_range(0..60));
            add(&mut g, s, t);
            let (s2, t2) = (
                60 + rng.gen_range(0..60usize),
                60 + rng.gen_range(0..60usize),
            );
            add(&mut g, s2, t2);
        }
        for _ in 0..15 {
            add(&mut g, rng.gen_range(0..60), 60 + rng.gen_range(0..60usize));
        }
        let adj = g.adjacency();
        let mut e = ExplicitBeliefs::new(120, 2);
        for _ in 0..12 {
            let v = rng.gen_range(0..120);
            let _ = e.set_label(v, usize::from(v >= 60), 1.0);
        }
        let coupling = CouplingMatrix::fig1a().unwrap();
        let eps = 0.5 * crate::convergence::eps_max_exact_linbp(&coupling.residual(), &adj, 1e-4);
        let lin = linbp(
            &adj,
            &e,
            &coupling.scaled_residual(eps),
            &LinBpOptions::default(),
        )
        .unwrap();
        let walk = rwr(&adj, &e, &RwrOptions::default()).unwrap();
        let gt = lin.beliefs.top_belief_assignment(1e-6);
        let ours = walk.beliefs.top_belief_assignment(1e-6);
        let (p, r) = crate::metrics::precision_recall(&gt, &ours);
        let f1 = crate::metrics::f1_score(p, r);
        assert!(f1 > 0.8, "homophily agreement f1 = {f1}");
    }

    /// Under heterophily, RWR gets the *wrong* labels where LinBP gets the
    /// right ones — the modeling gap that motivates the coupling matrix.
    #[test]
    fn fails_under_heterophily() {
        // Path seeded at one end with class 0; true labels alternate.
        let adj = path(6).adjacency();
        let mut e = ExplicitBeliefs::new(6, 2);
        e.set_label(0, 0, 1.0).unwrap();
        e.set_label(5, 1, 1.0).unwrap(); // consistent with alternation
        let h = CouplingMatrix::fig1b().unwrap().scaled_residual(0.2);
        let lin = linbp(&adj, &e, &h, &LinBpOptions::default()).unwrap();
        // LinBP alternates correctly.
        assert_eq!(lin.beliefs.top_beliefs(1, 1e-9), vec![1]);
        assert_eq!(lin.beliefs.top_beliefs(2, 1e-9), vec![0]);
        // RWR has no heterophily notion: node 1 stays closest to seed 0 and
        // is labeled 0 — wrong under alternation.
        let walk = rwr(&adj, &e, &RwrOptions::default()).unwrap();
        assert_eq!(walk.beliefs.top_beliefs(1, 1e-9), vec![0]);
    }

    #[test]
    fn restart_one_returns_restart_distribution() {
        let adj = path(4).adjacency();
        let e = two_seeds(4);
        let r = rwr(
            &adj,
            &e,
            &RwrOptions {
                restart: 1.0,
                ..Default::default()
            },
        )
        .unwrap();
        // With α = 1 the walk never moves: only seeds have mass.
        assert!(r.beliefs.row(0)[0] > 0.0);
        assert!(r.beliefs.row(1).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn error_cases() {
        let adj = path(4).adjacency();
        let e = two_seeds(4);
        assert!(matches!(
            rwr(
                &adj,
                &e,
                &RwrOptions {
                    restart: 0.0,
                    ..Default::default()
                }
            ),
            Err(RwrError::BadRestart)
        ));
        let e5 = two_seeds(5);
        assert!(matches!(
            rwr(&adj, &e5, &RwrOptions::default()),
            Err(RwrError::DimensionMismatch)
        ));
        let mut lonely = ExplicitBeliefs::new(4, 3);
        lonely.set_label(0, 0, 1.0).unwrap();
        assert!(matches!(
            rwr(&adj, &lonely, &RwrOptions::default()),
            Err(RwrError::EmptyClass(1))
        ));
    }

    #[test]
    fn isolated_nodes_stay_zero() {
        let mut g = lsbp_graph::Graph::new(5);
        g.add_edge_unweighted(0, 1);
        g.add_edge_unweighted(1, 2);
        let adj = g.adjacency();
        let mut e = ExplicitBeliefs::new(5, 2);
        e.set_label(0, 0, 1.0).unwrap();
        e.set_label(2, 1, 1.0).unwrap();
        let r = rwr(&adj, &e, &RwrOptions::default()).unwrap();
        assert!(r.beliefs.row(3).iter().all(|&x| x == 0.0));
        assert_eq!(r.beliefs.top_beliefs(4, 1e-9), vec![0, 1]); // all-tie
    }
}

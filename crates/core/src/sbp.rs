//! Single-Pass Belief Propagation (Sect. 6).
//!
//! SBP is the εH → 0⁺ limit of LinBP (Theorem 19): a node's belief is
//! determined only by its *nearest* explicitly-labeled neighbors,
//!
//! ```text
//! b̂_t = Ĥ^g · Σ_{p ∈ P^g_t} w_p · ê_p            (Definition 15)
//! ```
//!
//! where `g` is the geodesic number of `t` and `P^g_t` the shortest paths
//! from labeled nodes. Because the modified adjacency DAG of Lemma 17
//! points strictly from layer `g` to `g+1`, a single pass over BFS layers
//! computes all beliefs, touching every edge at most once.
//!
//! Incremental maintenance:
//!
//! * [`sbp_add_explicit`] — Algorithm 3: new explicit beliefs re-anchor a
//!   region of the graph; beliefs are recomputed outward layer by layer.
//! * [`sbp_add_edges`] — edge insertion (Algorithm 4 / Appendix C). We
//!   implement the *sorted-seed* variant the paper sketches at the end of
//!   Appendix C but left unimplemented ("we have not implemented this
//!   idea and leave experimenting with it for future work"): a unit-weight
//!   Dijkstra over affected nodes that processes each node at most once
//!   per final geodesic number, avoiding Algorithm 4's quadratic
//!   re-update cascades.
//!
//! Scale note: SBP's standardized/top beliefs are independent of εH
//! (Sect. 6.2), so all functions take the *unscaled* residual coupling.

use crate::beliefs::{BeliefMatrix, ExplicitBeliefs};
use lsbp_graph::{geodesic_numbers, Geodesics, UNREACHABLE};
use lsbp_linalg::{
    weight_balanced_ranges, FixedPointOp, FixedPointSolver, IterationEvent, Mat, ParallelismConfig,
    StepOutcome,
};
use lsbp_sparse::{CsrMatrix, PropagationOperator};
use std::collections::BinaryHeap;

/// Result of an SBP computation: beliefs plus the geodesic structure that
/// produced them (kept so incremental updates can resume).
#[derive(Clone, Debug)]
pub struct SbpResult {
    /// Residual beliefs. Nodes unreachable from every labeled node have
    /// all-zero rows.
    pub beliefs: BeliefMatrix,
    /// Geodesic numbers and BFS layers (Definition 14).
    pub geodesics: Geodesics,
}

/// Errors from the SBP family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SbpError {
    /// Adjacency and explicit-belief node counts differ.
    DimensionMismatch,
    /// Coupling arity differs from the beliefs' `k`.
    CouplingArityMismatch,
}

impl std::fmt::Display for SbpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SbpError::DimensionMismatch => write!(f, "adjacency/beliefs node count mismatch"),
            SbpError::CouplingArityMismatch => write!(f, "coupling arity mismatch"),
        }
    }
}

impl std::error::Error for SbpError {}

/// Relative rounding bound for a cancellation-prone sum: an accumulated
/// value whose magnitude is ≤ `CANCELLATION_EPS · Σ|term|` cannot be
/// distinguished from an exact 0 (Wilkinson's `(m−1)·ε·Σ|xᵢ|` summation
/// bound, with the constant absorbing moderate term counts). Shared with
/// the relational SBP in `lsbp-reldb` so both engines produce identical
/// tie read-outs.
pub const CANCELLATION_EPS: f64 = 1024.0 * f64::EPSILON;

/// Adds `w · (b_src · Ĥ)` into `dst` (row-vector convention, matching
/// `B̂ ← A·B̂·Ĥ`), tracking `Σ|term|` per entry in `abs` for the caller's
/// cancellation bound.
#[inline]
fn accumulate(dst: &mut [f64], abs: &mut [f64], b_src: &[f64], h: &Mat, w: f64) {
    let k = dst.len();
    for (c1, &b) in b_src.iter().enumerate() {
        if b == 0.0 {
            continue;
        }
        let hb = w * b;
        let h_row = h.row(c1);
        for c2 in 0..k {
            let term = hb * h_row[c2];
            dst[c2] += term;
            abs[c2] += term.abs();
        }
    }
}

/// Recomputes node `t`'s belief from all parents one geodesic layer below,
/// using `abs` as scratch (same length as `out`).
///
/// Definition 15 is exact arithmetic: a node adjacent to shortest paths
/// from seeds of all `k` classes can have entries that cancel *exactly*
/// (the centered coupling rows sum to 0), and the top-belief read-out must
/// see those as ties. Floating point leaves ~ε·Σ|term| residue instead, so
/// after accumulating we snap any entry within the rounding bound
/// [`CANCELLATION_EPS`]`·Σ|term|` back to an exact 0. The bound is
/// per-entry (matching the relational engine's per-`(t, c2)` aggregation)
/// and relative to the terms actually summed into that entry, so genuinely
/// small deep-layer beliefs (computed from same-scale terms) are never
/// flattened.
fn recompute_belief<A: PropagationOperator + ?Sized>(
    adj: &A,
    g: &[u32],
    beliefs: &Mat,
    h: &Mat,
    t: usize,
    out: &mut [f64],
    abs: &mut [f64],
) {
    out.fill(0.0);
    abs.fill(0.0);
    let gt = g[t];
    debug_assert!(gt != UNREACHABLE && gt > 0);
    for (s, w) in adj.row_iter(t) {
        if g[s] == gt - 1 {
            accumulate(out, abs, beliefs.row(s), h, w);
        }
    }
    for (x, &a) in out.iter_mut().zip(abs.iter()) {
        if x.abs() <= CANCELLATION_EPS * a {
            *x = 0.0;
        }
    }
}

/// Runs SBP from scratch (the in-memory analogue of Algorithm 2),
/// parallelized according to the process default
/// ([`ParallelismConfig::default`]).
pub fn sbp(
    adj: &CsrMatrix,
    explicit: &ExplicitBeliefs,
    h_residual: &Mat,
) -> Result<SbpResult, SbpError> {
    sbp_with(adj, explicit, h_residual, &ParallelismConfig::default())
}

/// [`sbp`] with an explicit execution configuration.
///
/// Within one BFS layer every node's belief depends only on the previous
/// layer (Lemma 17's DAG points strictly from layer `g` to `g+1`), so a
/// layer's nodes recompute independently: the parallel path computes them
/// into disjoint blocks of a per-layer staging buffer and copies the rows
/// back serially. Each node runs exactly the serial [`recompute_belief`],
/// so results are bitwise identical for any thread count. Honors the
/// shard knob on `cfg` like [`crate::linbp::linbp`].
pub fn sbp_with(
    adj: &CsrMatrix,
    explicit: &ExplicitBeliefs,
    h_residual: &Mat,
    cfg: &ParallelismConfig,
) -> Result<SbpResult, SbpError> {
    sbp_observed(adj, explicit, h_residual, cfg, |_| {})
}

/// [`sbp_with`] against any [`PropagationOperator`] — the operator is
/// used as given (no re-sharding).
pub fn sbp_on<A: PropagationOperator + ?Sized>(
    adj: &A,
    explicit: &ExplicitBeliefs,
    h_residual: &Mat,
    cfg: &ParallelismConfig,
) -> Result<SbpResult, SbpError> {
    sbp_observed_on(adj, explicit, h_residual, cfg, |_| {})
}

/// One BFS layer's belief recomputation as a [`FixedPointOp`]: solver
/// iteration `i` processes geodesic layer `i + 1` (the DAG of Lemma 17
/// points strictly from layer `g` to `g + 1`, so a single pass over the
/// layers *is* SBP's whole fixed-point schedule). Always runs the full
/// budget (`tol = 0`); the reported delta is 0 — SBP has no convergence
/// question, only a layer count.
struct SbpLayers<'a, A: PropagationOperator + ?Sized> {
    adj: &'a A,
    h: &'a Mat,
    geodesics: &'a Geodesics,
    beliefs: Mat,
    k: usize,
    row: Vec<f64>,
    abs: Vec<f64>,
    staging: Vec<f64>,
    cfg: &'a ParallelismConfig,
    pool: rayon::ThreadPool,
}

impl<A: PropagationOperator + ?Sized> FixedPointOp for SbpLayers<'_, A> {
    fn step(&mut self, _solver: &FixedPointSolver, iteration: usize) -> StepOutcome {
        let layer = iteration + 1;
        let nodes = &self.geodesics.layers[layer];
        let k = self.k;
        // Weigh each node by its degree + 1: recomputation walks the
        // node's full adjacency row.
        let mut cum = Vec::with_capacity(nodes.len() + 1);
        cum.push(0usize);
        for &t in nodes {
            cum.push(cum.last().unwrap() + self.adj.row_nnz(t as usize) + 1);
        }
        let parts = self.cfg.partitions(*cum.last().unwrap() * k);
        if parts <= 1 {
            for &t in nodes {
                recompute_belief(
                    self.adj,
                    &self.geodesics.g,
                    &self.beliefs,
                    self.h,
                    t as usize,
                    &mut self.row,
                    &mut self.abs,
                );
                self.beliefs.row_mut(t as usize).copy_from_slice(&self.row);
            }
            return StepOutcome::proceed(0.0);
        }
        self.staging.clear();
        self.staging.resize(nodes.len() * k, 0.0);
        let ranges = weight_balanced_ranges(&cum, parts);
        let mut rest: &mut [f64] = &mut self.staging;
        let beliefs_ref = &self.beliefs;
        let g_ref = &self.geodesics.g;
        let (adj, h) = (self.adj, self.h);
        self.pool.scope(|s| {
            for range in ranges {
                let (chunk, tail) = rest.split_at_mut((range.end - range.start) * k);
                rest = tail;
                s.spawn(move || {
                    let mut abs = vec![0.0; k];
                    for (i, &t) in nodes[range].iter().enumerate() {
                        recompute_belief(
                            adj,
                            g_ref,
                            beliefs_ref,
                            h,
                            t as usize,
                            &mut chunk[i * k..(i + 1) * k],
                            &mut abs,
                        );
                    }
                });
            }
        });
        for (i, &t) in nodes.iter().enumerate() {
            self.beliefs
                .row_mut(t as usize)
                .copy_from_slice(&self.staging[i * k..(i + 1) * k]);
        }
        StepOutcome::proceed(0.0)
    }
}

/// [`sbp_with`] with a per-layer observer: `observer` fires after every
/// BFS layer (the paper's "iterations" in Fig. 7d), letting harnesses
/// time layers without owning the sweep. Applies the shard knob on `cfg`
/// (re-sharding the CSR when `cfg.shards() > 1`), then runs the generic
/// engine.
pub fn sbp_observed(
    adj: &CsrMatrix,
    explicit: &ExplicitBeliefs,
    h_residual: &Mat,
    cfg: &ParallelismConfig,
    observer: impl FnMut(&IterationEvent),
) -> Result<SbpResult, SbpError> {
    crate::with_operator(adj, cfg, |op| {
        sbp_observed_on(op, explicit, h_residual, cfg, observer)
    })
}

/// The layer-sweep core, generic over the storage backend.
fn sbp_observed_on<A: PropagationOperator + ?Sized>(
    adj: &A,
    explicit: &ExplicitBeliefs,
    h_residual: &Mat,
    cfg: &ParallelismConfig,
    observer: impl FnMut(&IterationEvent),
) -> Result<SbpResult, SbpError> {
    let n = explicit.n();
    let k = explicit.k();
    if adj.n_rows() != n || adj.n_cols() != n {
        return Err(SbpError::DimensionMismatch);
    }
    if h_residual.rows() != k || h_residual.cols() != k {
        return Err(SbpError::CouplingArityMismatch);
    }
    let sources = explicit.explicit_nodes();
    let geodesics = geodesic_numbers(adj, &sources);
    let mut beliefs = Mat::zeros(n, k);
    for &v in &sources {
        beliefs.row_mut(v).copy_from_slice(explicit.row(v));
    }
    let layers = geodesics.num_layers();
    let mut op = SbpLayers {
        adj,
        h: h_residual,
        geodesics: &geodesics,
        beliefs,
        k,
        row: vec![0.0; k],
        abs: vec![0.0; k],
        staging: Vec::new(),
        cfg,
        pool: cfg.pool(),
    };
    FixedPointSolver::new(layers.saturating_sub(1), 0.0).run_observed(&mut op, observer);
    let beliefs = op.beliefs;
    Ok(SbpResult {
        beliefs: BeliefMatrix::from_mat(beliefs),
        geodesics,
    })
}

/// Rebuilds the `layers` index from a geodesic-number array.
fn rebuild_layers(g: &[u32]) -> Vec<Vec<u32>> {
    let max_layer = g.iter().copied().filter(|&x| x != UNREACHABLE).max();
    let Some(max_layer) = max_layer else {
        return Vec::new();
    };
    let mut layers = vec![Vec::new(); max_layer as usize + 1];
    for (v, &gv) in g.iter().enumerate() {
        if gv != UNREACHABLE {
            layers[gv as usize].push(v as u32);
        }
    }
    layers
}

/// Algorithm 3 — incremental maintenance under **new explicit beliefs**.
///
/// `additions` carries the new/changed explicit beliefs (its explicit rows
/// are applied on top of `prev`). Nodes listed become geodesic-0 anchors;
/// the update propagates outward, recomputing exactly the nodes whose
/// geodesic number or belief can change.
pub fn sbp_add_explicit(
    adj: &CsrMatrix,
    h_residual: &Mat,
    prev: &SbpResult,
    additions: &ExplicitBeliefs,
) -> Result<SbpResult, SbpError> {
    let n = prev.beliefs.n();
    let k = prev.beliefs.k();
    if adj.n_rows() != n || additions.n() != n {
        return Err(SbpError::DimensionMismatch);
    }
    if additions.k() != k || h_residual.rows() != k {
        return Err(SbpError::CouplingArityMismatch);
    }

    let mut g = prev.geodesics.g.clone();
    let mut beliefs = prev.beliefs.residual().clone();

    // Line 1–2 of Algorithm 3: anchor the new explicit nodes.
    let new_nodes = additions.explicit_nodes();
    let mut frontier: Vec<u32> = Vec::with_capacity(new_nodes.len());
    for &v in &new_nodes {
        g[v] = 0;
        beliefs.row_mut(v).copy_from_slice(additions.row(v));
        frontier.push(v as u32);
    }

    // Lines 4–8: sweep outward. At step i, any neighbor of the previous
    // frontier whose geodesic number is ≥ i gets geodesic number i and a
    // recomputed belief (from *all* parents at i−1, updated or not).
    let mut row = vec![0.0; k];
    let mut abs = vec![0.0; k];
    let mut i: u32 = 1;
    let mut next: Vec<u32> = Vec::new();
    let mut in_next = vec![false; n];
    while !frontier.is_empty() {
        next.clear();
        in_next.iter_mut().for_each(|b| *b = false);
        for &s in &frontier {
            for &t in adj.row_cols(s as usize) {
                if g[t as usize] >= i && !in_next[t as usize] {
                    in_next[t as usize] = true;
                    next.push(t);
                }
            }
        }
        for &t in &next {
            g[t as usize] = i;
        }
        for &t in &next {
            recompute_belief(
                adj, &g, &beliefs, h_residual, t as usize, &mut row, &mut abs,
            );
            beliefs.row_mut(t as usize).copy_from_slice(&row);
        }
        std::mem::swap(&mut frontier, &mut next);
        i += 1;
    }

    let layers = rebuild_layers(&g);
    Ok(SbpResult {
        beliefs: BeliefMatrix::from_mat(beliefs),
        geodesics: Geodesics { g, layers },
    })
}

/// Incremental maintenance under **new edges** (Algorithm 4, implemented
/// as the sorted-seed variant of Appendix C — see the module docs).
///
/// `adj_new` must be the adjacency matrix *including* the new edges;
/// `new_edges` lists them as undirected `(s, t, w)` triples.
pub fn sbp_add_edges(
    adj_new: &CsrMatrix,
    new_edges: &[(usize, usize, f64)],
    h_residual: &Mat,
    prev: &SbpResult,
) -> Result<SbpResult, SbpError> {
    let n = prev.beliefs.n();
    let k = prev.beliefs.k();
    if adj_new.n_rows() != n {
        return Err(SbpError::DimensionMismatch);
    }
    if h_residual.rows() != k {
        return Err(SbpError::CouplingArityMismatch);
    }

    let mut g = prev.geodesics.g.clone();
    let mut beliefs = prev.beliefs.residual().clone();

    // Min-heap of (tentative geodesic, node). `Reverse` turns the std
    // max-heap into a min-heap.
    use std::cmp::Reverse;
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();

    // Seed: every endpoint that gains a geodesic path through a new edge.
    // Case gs+1 < gt: the geodesic number itself drops; case gs+1 == gt:
    // the belief gains a path (same geodesic number).
    for &(s, t, _w) in new_edges {
        for (a, b) in [(s, t), (t, s)] {
            if g[a] == UNREACHABLE {
                continue;
            }
            let cand = g[a] + 1;
            if g[b] == UNREACHABLE || cand < g[b] {
                g[b] = cand;
                heap.push(Reverse((cand, b as u32)));
            } else if cand == g[b] {
                heap.push(Reverse((cand, b as u32)));
            }
        }
    }

    // Dijkstra-style sweep: each pop with a current key is processed once;
    // belief recomputation sees only final parents (smaller keys pop
    // first).
    let mut processed = vec![u32::MAX; n];
    let mut row = vec![0.0; k];
    let mut abs = vec![0.0; k];
    while let Some(Reverse((gv, t))) = heap.pop() {
        let t = t as usize;
        if gv != g[t] || processed[t] == gv {
            continue; // stale entry or already handled at this level
        }
        processed[t] = gv;
        recompute_belief(adj_new, &g, &beliefs, h_residual, t, &mut row, &mut abs);
        let changed = beliefs.row(t) != row.as_slice();
        beliefs.row_mut(t).copy_from_slice(&row);
        // Relax neighbors: shorter paths propagate always; equal-level
        // belief changes propagate only when the belief actually moved.
        for &u in adj_new.row_cols(t) {
            let cand = gv + 1;
            if g[u as usize] == UNREACHABLE || cand < g[u as usize] {
                g[u as usize] = cand;
                heap.push(Reverse((cand, u)));
            } else if cand == g[u as usize] && changed {
                heap.push(Reverse((cand, u)));
            }
        }
    }

    let layers = rebuild_layers(&g);
    Ok(SbpResult {
        beliefs: BeliefMatrix::from_mat(beliefs),
        geodesics: Geodesics { g, layers },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coupling::CouplingMatrix;
    use lsbp_graph::generators::{erdos_renyi_gnm, fig5c_torus, path};
    use lsbp_graph::Graph;

    fn h() -> Mat {
        CouplingMatrix::fig1c().unwrap().residual()
    }

    fn torus_explicit() -> ExplicitBeliefs {
        let mut e = ExplicitBeliefs::new(8, 3);
        e.set_residual(0, &[2.0, -1.0, -1.0]).unwrap();
        e.set_residual(1, &[-1.0, 2.0, -1.0]).unwrap();
        e.set_residual(2, &[-1.0, -1.0, 2.0]).unwrap();
        e
    }

    /// Example 20's flagship number: SBP's standardized beliefs at v4 are
    /// ζ(Ĥo³(ê_v1 + ê_v3)) ≈ [−0.069, 1.258, −1.189].
    #[test]
    fn example20_v4_beliefs() {
        let adj = fig5c_torus().adjacency();
        let r = sbp(&adj, &torus_explicit(), &h()).unwrap();
        let std = r.beliefs.standardized(3);
        assert!((std[0] - -0.069).abs() < 0.001, "{std:?}");
        assert!((std[1] - 1.258).abs() < 0.001, "{std:?}");
        assert!((std[2] - -1.189).abs() < 0.001, "{std:?}");
    }

    /// Example 16 / Fig. 5b: multiple shortest paths *sum* — the factor 2.
    #[test]
    fn multiple_shortest_paths_sum() {
        // v2(1) and v7(6) explicit; v1(0) two hops away with three shortest
        // paths (two from v2 via v3/v4, one from v7 via v3).
        let mut gr = Graph::new(7);
        for (s, t) in [
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 6),
            (3, 4),
            (4, 5),
            (5, 6),
        ] {
            gr.add_edge_unweighted(s, t);
        }
        let adj = gr.adjacency();
        let mut e = ExplicitBeliefs::new(7, 3);
        e.set_residual(1, &[2.0, -1.0, -1.0]).unwrap();
        e.set_residual(6, &[-1.0, -1.0, 2.0]).unwrap();
        let hh = h();
        let r = sbp(&adj, &e, &hh).unwrap();
        // Expected: Ĥ²(2·ê_v2 + ê_v7) — row-vector convention
        // b = (2ê_v2 + ê_v7)ᵀ·Ĥ² as rows.
        let combo = Mat::from_rows(&[&[2.0 * 2.0 - 1.0, -2.0 - 1.0, -2.0 + 2.0]]);
        let expect = combo.matmul(&hh).matmul(&hh);
        for c in 0..3 {
            assert!((r.beliefs.row(0)[c] - expect[(0, c)]).abs() < 1e-12);
        }
    }

    /// Explicit nodes keep exactly their explicit beliefs; unreachable
    /// nodes stay zero.
    #[test]
    fn anchors_and_unreachable() {
        let mut gr = Graph::new(5);
        gr.add_edge_unweighted(0, 1); // component {0,1}; {2,3,4} disconnected
        gr.add_edge_unweighted(2, 3);
        let adj = gr.adjacency();
        let mut e = ExplicitBeliefs::new(5, 3);
        e.set_label(0, 1, 1.0).unwrap();
        let r = sbp(&adj, &e, &h()).unwrap();
        assert_eq!(r.beliefs.row(0), e.row(0));
        assert!(r.beliefs.row(2).iter().all(|&x| x == 0.0));
        assert!(r.beliefs.row(4).iter().all(|&x| x == 0.0));
        assert_eq!(r.geodesics.geodesic(4), None);
        // Unreachable nodes read out as an all-tie.
        assert_eq!(r.beliefs.top_beliefs(2, 1e-9), vec![0, 1, 2]);
    }

    /// Weighted paths multiply weights along the way (Definition 15's w_p).
    #[test]
    fn weighted_path_products() {
        let mut gr = Graph::new(3);
        gr.add_edge(0, 1, 2.0);
        gr.add_edge(1, 2, 5.0);
        let adj = gr.adjacency();
        let mut e = ExplicitBeliefs::new(3, 3);
        e.set_residual(0, &[2.0, -1.0, -1.0]).unwrap();
        let hh = h();
        let r = sbp(&adj, &e, &hh).unwrap();
        let e_row = Mat::from_rows(&[&[2.0, -1.0, -1.0]]);
        let expect1 = e_row.matmul(&hh).scale(2.0);
        let expect2 = e_row.matmul(&hh).matmul(&hh).scale(10.0);
        for c in 0..3 {
            assert!((r.beliefs.row(1)[c] - expect1[(0, c)]).abs() < 1e-12);
            assert!((r.beliefs.row(2)[c] - expect2[(0, c)]).abs() < 1e-12);
        }
    }

    /// Incremental explicit-belief insertion equals recomputation from
    /// scratch (Proposition 22) — randomized check over several seeds.
    #[test]
    fn add_explicit_matches_scratch() {
        let hh = h();
        for seed in 0..5u64 {
            let gr = erdos_renyi_gnm(60, 150, seed);
            let adj = gr.adjacency();
            let mut base = ExplicitBeliefs::new(60, 3);
            base.set_label(0, 0, 1.0).unwrap();
            base.set_label(7, 1, 1.0).unwrap();
            let prev = sbp(&adj, &base, &hh).unwrap();

            let mut delta = ExplicitBeliefs::new(60, 3);
            delta.set_label(23, 2, 1.0).unwrap();
            delta.set_label(41, 0, 1.0).unwrap();
            let incremental = sbp_add_explicit(&adj, &hh, &prev, &delta).unwrap();

            let mut full = base.clone();
            full.set_label(23, 2, 1.0).unwrap();
            full.set_label(41, 0, 1.0).unwrap();
            let scratch = sbp(&adj, &full, &hh).unwrap();

            assert_eq!(incremental.geodesics.g, scratch.geodesics.g, "seed {seed}");
            assert!(
                incremental
                    .beliefs
                    .residual()
                    .max_abs_diff(scratch.beliefs.residual())
                    < 1e-10,
                "seed {seed}"
            );
        }
    }

    /// Adding explicit beliefs to a previously unreachable region anchors
    /// it.
    #[test]
    fn add_explicit_reaches_new_component() {
        let mut gr = Graph::new(4);
        gr.add_edge_unweighted(0, 1);
        gr.add_edge_unweighted(2, 3);
        let adj = gr.adjacency();
        let hh = h();
        let mut base = ExplicitBeliefs::new(4, 3);
        base.set_label(0, 0, 1.0).unwrap();
        let prev = sbp(&adj, &base, &hh).unwrap();
        assert_eq!(prev.geodesics.geodesic(3), None);
        let mut delta = ExplicitBeliefs::new(4, 3);
        delta.set_label(2, 1, 1.0).unwrap();
        let r = sbp_add_explicit(&adj, &hh, &prev, &delta).unwrap();
        assert_eq!(r.geodesics.geodesic(2), Some(0));
        assert_eq!(r.geodesics.geodesic(3), Some(1));
        assert!(r.beliefs.row(3).iter().any(|&x| x != 0.0));
    }

    /// Incremental edge insertion equals recomputation from scratch —
    /// randomized over seeds and batch sizes.
    #[test]
    fn add_edges_matches_scratch() {
        let hh = h();
        for seed in 0..5u64 {
            let full_graph = erdos_renyi_gnm(50, 140, seed);
            let (base, extra) = full_graph.split_edges(110);
            let adj_base = base.adjacency();
            let adj_full = full_graph.adjacency();
            let mut e = ExplicitBeliefs::new(50, 3);
            e.set_label(1, 0, 1.0).unwrap();
            e.set_label(9, 2, 1.0).unwrap();
            let prev = sbp(&adj_base, &e, &hh).unwrap();
            let new_edges: Vec<_> = extra.edges().collect();
            let incremental = sbp_add_edges(&adj_full, &new_edges, &hh, &prev).unwrap();
            let scratch = sbp(&adj_full, &e, &hh).unwrap();
            assert_eq!(incremental.geodesics.g, scratch.geodesics.g, "seed {seed}");
            assert!(
                incremental
                    .beliefs
                    .residual()
                    .max_abs_diff(scratch.beliefs.residual())
                    < 1e-10,
                "seed {seed}"
            );
        }
    }

    /// The Appendix C worked case: new edges s–v and v–t with original
    /// geodesics 0, 2, 4 cascade updates through v to t.
    #[test]
    fn appendix_c_cascade() {
        // Path 0-1-2-3-4 with explicit node 0: geodesics 0,1,2,3,4.
        let base = path(5);
        let adj_base = base.adjacency();
        let hh = h();
        let mut e = ExplicitBeliefs::new(5, 3);
        e.set_label(0, 0, 1.0).unwrap();
        let prev = sbp(&adj_base, &e, &hh).unwrap();
        assert_eq!(prev.geodesics.g[4], 4);
        // Add edges 0–2 and 2–4 (s=0 g=0, v=2 g=2, t=4 g=4).
        let mut full = base.clone();
        full.add_edge_unweighted(0, 2);
        full.add_edge_unweighted(2, 4);
        let adj_full = full.adjacency();
        let r = sbp_add_edges(&adj_full, &[(0, 2, 1.0), (2, 4, 1.0)], &hh, &prev).unwrap();
        let scratch = sbp(&adj_full, &e, &hh).unwrap();
        assert_eq!(r.geodesics.g, scratch.geodesics.g);
        assert_eq!(r.geodesics.g[2], 1);
        assert_eq!(r.geodesics.g[4], 2);
        assert!(
            r.beliefs
                .residual()
                .max_abs_diff(scratch.beliefs.residual())
                < 1e-12
        );
    }

    #[test]
    fn error_cases() {
        let adj = path(3).adjacency();
        let e = ExplicitBeliefs::new(4, 3);
        assert!(matches!(
            sbp(&adj, &e, &h()),
            Err(SbpError::DimensionMismatch)
        ));
        let e2 = ExplicitBeliefs::new(3, 2);
        assert!(matches!(
            sbp(&adj, &e2, &h()),
            Err(SbpError::CouplingArityMismatch)
        ));
    }
}

//! Closed-form solution of LinBP (Proposition 7).
//!
//! `vec(B̂) = (I_nk − Ĥ⊗A + Ĥ²⊗D)⁻¹ · vec(Ê)`
//!
//! Two solvers:
//!
//! * [`linbp_closed_form_dense`] materializes the `nk × nk` system and
//!   solves it by LU — exact (up to floating point) whenever the matrix is
//!   invertible, **even outside the convergence region of the iterative
//!   updates**. This is the correctness oracle for the whole crate: tests
//!   assert the iterative fixpoint matches it whenever Lemma 8 admits
//!   convergence.
//! * [`linbp_closed_form_jacobi`] solves the same system matrix-free with
//!   the Jacobi iteration of Eq. 13/14 — which is *exactly* the LinBP
//!   update — but with solver semantics: it errors out instead of silently
//!   returning garbage when ρ ≥ 1.

use crate::beliefs::{BeliefMatrix, ExplicitBeliefs};
use crate::linbp::{linbp, linbp_star, LinBpOptions};
use lsbp_linalg::{lu_solve, Mat};
use lsbp_sparse::CsrMatrix;

/// Errors from the closed-form solvers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClosedFormError {
    /// `n·k` exceeds the dense-solver guard (the `nk × nk` matrix would not
    /// fit in reasonable memory / time).
    SystemTooLarge,
    /// The system matrix is singular.
    Singular,
    /// Adjacency/beliefs/coupling dimensions disagree.
    DimensionMismatch,
    /// The Jacobi iteration did not converge (ρ ≥ 1, Lemma 8).
    NotConvergent,
}

impl std::fmt::Display for ClosedFormError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClosedFormError::SystemTooLarge => write!(f, "n·k too large for the dense solver"),
            ClosedFormError::Singular => write!(f, "closed-form system matrix is singular"),
            ClosedFormError::DimensionMismatch => write!(f, "dimension mismatch"),
            ClosedFormError::NotConvergent => {
                write!(
                    f,
                    "Jacobi iteration diverged: spectral radius ≥ 1 (Lemma 8)"
                )
            }
        }
    }
}

impl std::error::Error for ClosedFormError {}

/// Upper bound on `n·k` for the dense path (the LU is `O((nk)³)`).
pub const DENSE_LIMIT: usize = 2500;

/// Solves LinBP (`echo = true`, Eq. 11) or LinBP\* (`echo = false`,
/// Eq. 12) exactly by materializing the Kronecker system.
pub fn linbp_closed_form_dense(
    adj: &CsrMatrix,
    explicit: &ExplicitBeliefs,
    h_residual: &Mat,
    echo: bool,
) -> Result<BeliefMatrix, ClosedFormError> {
    let n = explicit.n();
    let k = explicit.k();
    if adj.n_rows() != n || adj.n_cols() != n || h_residual.rows() != k || h_residual.cols() != k {
        return Err(ClosedFormError::DimensionMismatch);
    }
    let nk = n.checked_mul(k).ok_or(ClosedFormError::SystemTooLarge)?;
    if nk > DENSE_LIMIT {
        return Err(ClosedFormError::SystemTooLarge);
    }

    // M = I − Ĥ⊗A (+ Ĥ²⊗D).
    let a_dense = adj.to_dense();
    let mut m = Mat::identity(nk);
    m.sub_assign(&h_residual.kronecker(&a_dense));
    if echo {
        let degrees = adj.squared_weight_degrees();
        let d_dense = Mat::from_fn(n, n, |r, c| if r == c { degrees[r] } else { 0.0 });
        let h2 = h_residual.matmul(h_residual);
        m.add_assign(&h2.kronecker(&d_dense));
    }

    let rhs = explicit.residual_matrix().vectorize();
    let x = lu_solve(&m, &rhs).map_err(|_| ClosedFormError::Singular)?;
    Ok(BeliefMatrix::from_mat(Mat::from_vectorized(n, k, &x)))
}

/// Solves the closed form iteratively by the Jacobi method (Eq. 14/15 —
/// identical to the LinBP update equations), erroring out on divergence.
pub fn linbp_closed_form_jacobi(
    adj: &CsrMatrix,
    explicit: &ExplicitBeliefs,
    h_residual: &Mat,
    echo: bool,
    opts: &LinBpOptions,
) -> Result<BeliefMatrix, ClosedFormError> {
    let run = if echo {
        linbp(adj, explicit, h_residual, opts)
    } else {
        linbp_star(adj, explicit, h_residual, opts)
    };
    let result = run.map_err(|_| ClosedFormError::DimensionMismatch)?;
    if result.diverged || !result.converged {
        return Err(ClosedFormError::NotConvergent);
    }
    Ok(result.beliefs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coupling::CouplingMatrix;
    use lsbp_graph::generators::{cycle, fig5c_torus, path};

    fn torus_setup() -> (CsrMatrix, ExplicitBeliefs, Mat) {
        let adj = fig5c_torus().adjacency();
        let mut e = ExplicitBeliefs::new(8, 3);
        e.set_residual(0, &[2.0, -1.0, -1.0]).unwrap();
        e.set_residual(1, &[-1.0, 2.0, -1.0]).unwrap();
        e.set_residual(2, &[-1.0, -1.0, 2.0]).unwrap();
        let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.1);
        (adj, e, h)
    }

    /// The dense closed form and the iterative fixpoint agree inside the
    /// convergence region — for both LinBP and LinBP*.
    #[test]
    fn dense_matches_iterative() {
        let (adj, e, h) = torus_setup();
        for echo in [true, false] {
            let dense = linbp_closed_form_dense(&adj, &e, &h, echo).unwrap();
            let opts = LinBpOptions {
                max_iter: 5000,
                tol: 1e-14,
                ..Default::default()
            };
            let iter = linbp_closed_form_jacobi(&adj, &e, &h, echo, &opts).unwrap();
            assert!(
                dense.residual().max_abs_diff(iter.residual()) < 1e-9,
                "echo={echo}"
            );
        }
    }

    /// The closed form satisfies the implicit equation B̂ = Ê + A·B̂·Ĥ − D·B̂·Ĥ².
    #[test]
    fn dense_satisfies_fixed_point() {
        let (adj, e, h) = torus_setup();
        let b = linbp_closed_form_dense(&adj, &e, &h, true).unwrap();
        let h2 = h.matmul(&h);
        let ab = adj.spmm(b.residual()).matmul(&h);
        let degrees = adj.squared_weight_degrees();
        let db = Mat::from_fn(8, 3, |r, c| degrees[r] * b.residual()[(r, c)]).matmul(&h2);
        let rhs = e.residual_matrix().add(&ab).sub(&db);
        assert!(b.residual().max_abs_diff(&rhs) < 1e-10);
    }

    /// Outside the convergence region, Jacobi reports NotConvergent while
    /// the dense solve still returns the algebraic solution.
    #[test]
    fn beyond_radius_dense_still_solves() {
        let adj = cycle(6).adjacency();
        let mut e = ExplicitBeliefs::new(6, 2);
        e.set_label(0, 0, 0.1).unwrap();
        let h = CouplingMatrix::fig1a().unwrap().scaled_residual(1.0); // ρ = 1.2
        let opts = LinBpOptions {
            max_iter: 500,
            ..Default::default()
        };
        assert!(matches!(
            linbp_closed_form_jacobi(&adj, &e, &h, false, &opts),
            Err(ClosedFormError::NotConvergent)
        ));
        // ρ(Ĥ⊗A) = 1.2 but I − Ĥ⊗A is still invertible (no eigenvalue at
        // exactly 1): the dense path produces the algebraic solution.
        let dense = linbp_closed_form_dense(&adj, &e, &h, false).unwrap();
        assert!(dense.residual().max_abs() > 0.0);
    }

    #[test]
    fn size_guard() {
        let adj = path(3000).adjacency();
        let e = ExplicitBeliefs::new(3000, 2);
        let h = CouplingMatrix::fig1a().unwrap().scaled_residual(0.1);
        assert!(matches!(
            linbp_closed_form_dense(&adj, &e, &h, true),
            Err(ClosedFormError::SystemTooLarge)
        ));
    }

    #[test]
    fn dimension_guard() {
        let adj = path(3).adjacency();
        let e = ExplicitBeliefs::new(4, 2);
        let h = CouplingMatrix::fig1a().unwrap().scaled_residual(0.1);
        assert!(matches!(
            linbp_closed_form_dense(&adj, &e, &h, true),
            Err(ClosedFormError::DimensionMismatch)
        ));
    }
}

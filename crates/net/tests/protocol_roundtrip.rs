//! Wire-protocol property tests: every [`Request`]/[`Response`] variant
//! round-trips bit-exactly through encode → frame → extract → decode, and
//! hostile inputs (truncated frames, oversized length prefixes, trailing
//! bytes) are rejected with typed errors instead of panics or partial
//! values.
//!
//! The vendored proptest has no `prop_oneof!`; variant choice is driven by
//! a selector integer mapped over a tuple of all the field strategies.

use lsbp_net::{
    extract_frame, oversized_claim, read_frame, salvage_request_id, write_frame, BeliefsPayload,
    ErrorCode, HealthInfo, LinBpParams, Request, RequestEnvelope, Response, ResponseEnvelope,
    RwrParams, ServedVia, ServerStats, WireEdge, WireError, WireNorm, WireSeed, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// Bit-pattern driven f64s: covers negative zero, subnormals, infinities
/// and NaN payloads — the protocol must preserve all of them exactly.
fn arb_f64() -> impl proptest::Strategy<Value = f64> {
    (0u64..u64::MAX).prop_map(f64::from_bits)
}

fn arb_bool() -> impl proptest::Strategy<Value = bool> {
    (0u8..2).prop_map(|b| b == 1)
}

fn arb_edges(max: usize) -> impl proptest::Strategy<Value = Vec<WireEdge>> {
    proptest::collection::vec((0u64..1000, 0u64..1000, arb_f64()), 0..max).prop_map(|list| {
        list.into_iter()
            .map(|(src, dst, weight)| WireEdge { src, dst, weight })
            .collect()
    })
}

fn arb_seeds(max: usize) -> impl proptest::Strategy<Value = Vec<WireSeed>> {
    proptest::collection::vec(
        (0u64..1000, proptest::collection::vec(arb_f64(), 0..5)),
        0..max,
    )
    .prop_map(|list| {
        list.into_iter()
            .map(|(node, residual)| WireSeed { node, residual })
            .collect()
    })
}

fn arb_norm() -> impl proptest::Strategy<Value = WireNorm> {
    (0u8..2).prop_map(|t| {
        if t == 0 {
            WireNorm::MaxAbs
        } else {
            WireNorm::L2
        }
    })
}

fn arb_linbp_params() -> impl proptest::Strategy<Value = LinBpParams> {
    (
        (
            arb_bool(),
            1u32..5,
            proptest::collection::vec(arb_f64(), 0..17),
        ),
        (0u64..10_000, arb_f64(), arb_norm()),
        (arb_f64(), arb_f64()),
    )
        .prop_map(
            |((echo, k, h_residual), (max_iter, tol, norm), (damping, divergence_guard))| {
                LinBpParams {
                    echo,
                    k,
                    h_residual,
                    max_iter,
                    tol,
                    norm,
                    damping,
                    divergence_guard,
                }
            },
        )
}

fn arb_rwr_params() -> impl proptest::Strategy<Value = RwrParams> {
    (1u32..5, arb_f64(), 0u64..10_000, arb_f64(), arb_norm()).prop_map(
        |(k, restart, max_iter, tol, norm)| RwrParams {
            k,
            restart,
            max_iter,
            tol,
            norm,
        },
    )
}

/// All eight request variants, chosen by a selector integer.
fn arb_request() -> impl proptest::Strategy<Value = Request> {
    (
        0u8..8,
        (0u64..1_000_000, 0u64..10_000, arb_bool()),
        arb_edges(12),
        (arb_linbp_params(), arb_rwr_params()),
        arb_seeds(8),
    )
        .prop_map(
            |(tag, (graph_id, n_nodes, symmetric), edges, (linbp, rwr), seeds)| match tag {
                0 => Request::Ping,
                1 => Request::RegisterGraph {
                    graph_id,
                    n_nodes,
                    symmetric,
                    edges,
                },
                2 => Request::SolveLinBp {
                    graph_id,
                    params: linbp,
                    seeds,
                },
                3 => Request::SolveRwr {
                    graph_id,
                    params: rwr,
                    seeds,
                },
                4 => Request::EdgeDelta {
                    graph_id,
                    symmetric,
                    deltas: edges,
                },
                5 => Request::Stats,
                6 => Request::Shutdown,
                _ => Request::Health,
            },
        )
}

fn arb_served() -> impl proptest::Strategy<Value = ServedVia> {
    (0u8..5, 1u32..64, 1u64..1000).prop_map(|(tag, batch, version)| match tag {
        0 => ServedVia::Solo,
        1 => ServedVia::Coalesced { batch },
        2 => ServedVia::Cache,
        3 => ServedVia::CachePatched,
        _ => ServedVia::Stale { version },
    })
}

fn arb_error_code() -> impl proptest::Strategy<Value = ErrorCode> {
    (0u8..6).prop_map(|t| match t {
        0 => ErrorCode::UnknownGraph,
        1 => ErrorCode::GraphAlreadyRegistered,
        2 => ErrorCode::BadRequest,
        3 => ErrorCode::Overloaded,
        4 => ErrorCode::Internal,
        _ => ErrorCode::DeadlineExceeded,
    })
}

fn arb_retry_after() -> impl proptest::Strategy<Value = Option<u64>> {
    (0u8..2, 0u64..60_000).prop_map(|(some, ms)| if some == 1 { Some(ms) } else { None })
}

fn arb_stats() -> impl proptest::Strategy<Value = ServerStats> {
    (
        (
            (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
            (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
            (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
        ),
        (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
        (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
        (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
    )
        .prop_map(
            |(
                ((a, b, c, d), (e, f, g, h), (i, j, k, l)),
                (m, n, o, p),
                (q, r, s, t),
                (u, v, w),
            )| {
                ServerStats {
                    graphs: a,
                    cached_entries: b,
                    queries_served: c,
                    cache_hits: d,
                    coalesced_batches: e,
                    coalesced_queries: f,
                    largest_batch: g,
                    spmm_passes: h,
                    spmm_passes_sequential_equiv: i,
                    patched_entries: j,
                    invalidated_entries: k,
                    rejected_overloaded: l,
                    rejected_deadline: m,
                    rejected_invalid: n,
                    panics_caught: o,
                    degraded_stale: p,
                    degraded_clamped: q,
                    pager_hits: r,
                    pager_misses: s,
                    pager_evictions: t,
                    pager_prefetches: u,
                    frontier_rows_active: v,
                    frontier_rows_skipped: w,
                }
            },
        )
}

fn arb_health() -> impl proptest::Strategy<Value = HealthInfo> {
    (
        (0u64..1 << 40, 0u64..1 << 20, 0u64..1 << 20, 0u64..1 << 40),
        arb_bool(),
        (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
        (0u64..1 << 40, 0u64..1 << 40),
    )
        .prop_map(
            |(
                (uptime_ms, graphs, queue_depth, cached_entries),
                spill_enabled,
                (pager_hits, pager_misses, pager_evictions, pager_prefetches),
                (frontier_rows_active, frontier_rows_skipped),
            )| HealthInfo {
                protocol_version: PROTOCOL_VERSION,
                graphs,
                queue_depth,
                cached_entries,
                uptime_ms,
                spill_enabled,
                pager_hits,
                pager_misses,
                pager_evictions,
                pager_prefetches,
                frontier_rows_active,
                frontier_rows_skipped,
            },
        )
}

fn arb_message() -> impl proptest::Strategy<Value = String> {
    proptest::collection::vec(0x20u8..0x7f, 0..60)
        .prop_map(|bytes| String::from_utf8(bytes).unwrap())
}

fn arb_beliefs_payload() -> impl proptest::Strategy<Value = BeliefsPayload> {
    (
        (0u64..40, 1u32..5),
        (arb_bool(), arb_bool(), 0u64..500, arb_f64(), arb_served()),
    )
        .prop_flat_map(
            |((n, k), (converged, diverged, iterations, final_delta, served))| {
                let len = (n as usize) * (k as usize);
                proptest::collection::vec(arb_f64(), len..len + 1).prop_map(move |beliefs| {
                    BeliefsPayload {
                        n,
                        k,
                        beliefs,
                        converged,
                        diverged,
                        iterations,
                        final_delta,
                        served,
                    }
                })
            },
        )
}

/// All eight response variants, chosen by a selector integer.
fn arb_response() -> impl proptest::Strategy<Value = Response> {
    (
        0u8..8,
        (0u64..1_000_000, 1u64..100, 0u64..10_000, 0u64..1 << 32),
        arb_beliefs_payload(),
        (arb_error_code(), arb_message(), arb_retry_after()),
        (arb_stats(), arb_health()),
    )
        .prop_map(
            |(
                tag,
                (graph_id, version, n_nodes, nnz),
                payload,
                (code, message, retry_after_ms),
                (stats, health),
            )| match tag {
                0 => Response::Pong {
                    protocol_version: PROTOCOL_VERSION,
                },
                1 => Response::Registered {
                    graph_id,
                    version,
                    n_nodes,
                    nnz,
                },
                2 => Response::Beliefs(payload),
                3 => Response::DeltaApplied {
                    graph_id,
                    version,
                    patched: n_nodes,
                    invalidated: nnz,
                },
                4 => Response::Error {
                    code,
                    message,
                    retry_after_ms,
                },
                5 => Response::Stats(stats),
                6 => Response::ShuttingDown,
                _ => Response::Health(health),
            },
        )
}

fn arb_request_envelope() -> impl proptest::Strategy<Value = RequestEnvelope> {
    (arb_request(), 0u64..u64::MAX, arb_retry_after()).prop_map(
        |(request, request_id, deadline_ms)| RequestEnvelope {
            request_id,
            deadline_ms,
            request,
        },
    )
}

/// Bitwise equality for f64 vectors (`PartialEq` treats NaN ≠ NaN and
/// -0.0 == 0.0; the wire contract is stricter).
fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn seeds_bits_eq(a: &[WireSeed], b: &[WireSeed]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.node == y.node && bits_eq(&x.residual, &y.residual))
}

fn request_bits_eq(a: &Request, b: &Request) -> bool {
    match (a, b) {
        (
            Request::SolveLinBp {
                graph_id: g1,
                params: p1,
                seeds: s1,
            },
            Request::SolveLinBp {
                graph_id: g2,
                params: p2,
                seeds: s2,
            },
        ) => {
            g1 == g2
                && p1.echo == p2.echo
                && p1.k == p2.k
                && bits_eq(&p1.h_residual, &p2.h_residual)
                && p1.max_iter == p2.max_iter
                && p1.tol.to_bits() == p2.tol.to_bits()
                && p1.norm == p2.norm
                && p1.damping.to_bits() == p2.damping.to_bits()
                && p1.divergence_guard.to_bits() == p2.divergence_guard.to_bits()
                && seeds_bits_eq(s1, s2)
        }
        // All other variants: canonical-bytes comparison covers their f64
        // fields bit-exactly.
        _ => a.encode() == b.encode(),
    }
}

// ---------------------------------------------------------------------------
// Round-trip properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every request variant survives encode → decode bit-exactly, and the
    /// encoding is canonical (re-encoding the decode yields identical bytes).
    #[test]
    fn request_roundtrip(req in arb_request()) {
        let bytes = req.encode();
        let back = Request::decode(&bytes).expect("decode own encoding");
        prop_assert!(request_bits_eq(&req, &back));
        prop_assert_eq!(back.encode(), bytes);
    }

    /// Every response variant survives encode → decode with canonical bytes.
    #[test]
    fn response_roundtrip(resp in arb_response()) {
        let bytes = resp.encode();
        let back = Response::decode(&bytes).expect("decode own encoding");
        prop_assert_eq!(back.encode(), bytes);
    }

    /// Framing a request and feeding the stream byte-by-byte to the
    /// non-blocking extractor yields exactly the payload, exactly once.
    #[test]
    fn extract_frame_streaming(req in arb_request()) {
        let payload = req.encode();
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();

        let mut buf = Vec::new();
        let mut extracted = None;
        for &b in &framed {
            buf.push(b);
            if let Some(p) = extract_frame(&mut buf).unwrap() {
                prop_assert!(extracted.is_none(), "frame extracted twice");
                extracted = Some(p);
            }
        }
        prop_assert_eq!(extracted.as_deref(), Some(&payload[..]));
        prop_assert!(buf.is_empty());
    }

    /// Any strict prefix of an encoded request fails to decode —
    /// truncation is always a typed error, never a panic or partial value.
    #[test]
    fn truncated_payload_never_panics(req in arb_request(), cut in 0usize..64) {
        let bytes = req.encode();
        if bytes.len() > 1 {
            let cut = 1 + cut % (bytes.len() - 1);
            let prefix = &bytes[..bytes.len() - cut];
            prop_assert!(Request::decode(prefix).is_err());
        }
    }

    /// A frame cut anywhere mid-stream surfaces `Truncated` from the
    /// blocking reader, never a partial payload.
    #[test]
    fn truncated_frame_rejected(resp in arb_response(), cut in 1usize..32) {
        let payload = resp.encode();
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();
        let keep = (framed.len() - 1 - cut % (framed.len() - 1)).max(1);
        let mut cursor = std::io::Cursor::new(framed[..keep].to_vec());
        match read_frame(&mut cursor) {
            Err(WireError::Truncated) => {}
            Ok(Some(p)) => prop_assert!(
                false,
                "truncated stream produced a {}-byte payload",
                p.len()
            ),
            Ok(None) => prop_assert!(false, "truncated stream read as clean EOF"),
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    /// Appending junk to a valid encoding is rejected as TrailingBytes.
    #[test]
    fn trailing_bytes_rejected(req in arb_request(), junk in 1usize..16) {
        let mut bytes = req.encode();
        bytes.extend(std::iter::repeat_n(0xAB, junk));
        prop_assert_eq!(Request::decode(&bytes), Err(WireError::TrailingBytes(junk)));
    }

    /// Arbitrary byte soup never panics the decoder.
    #[test]
    fn fuzz_decode_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
        let _ = RequestEnvelope::decode(&bytes);
        let _ = ResponseEnvelope::decode(&bytes);
    }

    /// A v2 request envelope round-trips bit-exactly with canonical bytes,
    /// and the correlation id is salvageable from the raw payload even
    /// without a full decode.
    #[test]
    fn request_envelope_roundtrip(env in arb_request_envelope()) {
        let bytes = env.encode();
        let back = RequestEnvelope::decode(&bytes).expect("decode own encoding");
        prop_assert_eq!(back.request_id, env.request_id);
        prop_assert_eq!(back.deadline_ms, env.deadline_ms);
        prop_assert!(request_bits_eq(&env.request, &back.request));
        prop_assert_eq!(back.encode(), bytes.clone());
        prop_assert_eq!(salvage_request_id(&bytes), env.request_id);
    }

    /// A v2 response envelope round-trips with canonical bytes and echoes
    /// its id.
    #[test]
    fn response_envelope_roundtrip(resp in arb_response(), id in 0u64..u64::MAX) {
        let env = ResponseEnvelope::new(id, resp);
        let bytes = env.encode();
        let back = ResponseEnvelope::decode(&bytes).expect("decode own encoding");
        prop_assert_eq!(back.request_id, id);
        prop_assert_eq!(back.encode(), bytes);
    }

    /// Any strict prefix of an encoded request envelope fails to decode.
    #[test]
    fn truncated_envelope_never_panics(env in arb_request_envelope(), cut in 0usize..64) {
        let bytes = env.encode();
        if bytes.len() > 1 {
            let cut = 1 + cut % (bytes.len() - 1);
            prop_assert!(RequestEnvelope::decode(&bytes[..bytes.len() - cut]).is_err());
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic hostile-input cases
// ---------------------------------------------------------------------------

#[test]
fn oversized_length_prefix_rejected_by_both_readers() {
    let hostile = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes();
    let mut stream = hostile.to_vec();
    stream.extend_from_slice(&[0u8; 64]);

    let mut cursor = std::io::Cursor::new(stream.clone());
    assert!(matches!(
        read_frame(&mut cursor),
        Err(WireError::OversizedFrame(_))
    ));

    let mut buf = stream;
    assert!(matches!(
        extract_frame(&mut buf),
        Err(WireError::OversizedFrame(_))
    ));
}

#[test]
fn hostile_collection_length_cannot_allocate() {
    // RegisterGraph claiming u64::MAX edges with an empty body must fail
    // fast (Truncated), not attempt a ~400 EiB allocation.
    let mut bytes = vec![1u8];
    bytes.extend_from_slice(&7u64.to_le_bytes()); // graph_id
    bytes.extend_from_slice(&10u64.to_le_bytes()); // n_nodes
    bytes.push(0); // symmetric
    bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // hostile edge count
    assert_eq!(Request::decode(&bytes), Err(WireError::Truncated));
}

#[test]
fn unknown_tags_are_typed_errors() {
    assert!(matches!(
        Request::decode(&[250]),
        Err(WireError::UnknownTag {
            kind: "Request",
            tag: 250
        })
    ));
    assert!(matches!(
        Response::decode(&[251]),
        Err(WireError::UnknownTag {
            kind: "Response",
            tag: 251
        })
    ));
}

#[test]
fn empty_payload_is_truncated() {
    assert_eq!(Request::decode(&[]), Err(WireError::Truncated));
    assert_eq!(Response::decode(&[]), Err(WireError::Truncated));
    assert!(RequestEnvelope::decode(&[]).is_err());
    assert!(ResponseEnvelope::decode(&[]).is_err());
}

#[test]
fn oversized_claim_detects_hostile_header_before_body() {
    // A dribbling client: the check must stay quiet on a partial header
    // (the top length byte arrives last in LE), then fire the moment the
    // 4th byte lands — long before any body bytes.
    let hostile = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes();
    for keep in 0..4 {
        assert_eq!(oversized_claim(&hostile[..keep]), None);
    }
    assert_eq!(oversized_claim(&hostile), Some((MAX_FRAME_LEN + 1) as u64));

    // An acceptable length never trips the guard, with or without body.
    let fine = (64u32).to_le_bytes();
    assert_eq!(oversized_claim(&fine), None);
    let mut with_body = fine.to_vec();
    with_body.extend_from_slice(&[0u8; 32]);
    assert_eq!(oversized_claim(&with_body), None);
}

#[test]
fn salvage_request_id_handles_short_payloads() {
    assert_eq!(salvage_request_id(&[]), 0);
    assert_eq!(salvage_request_id(&[1, 2, 3]), 0);
    let env = RequestEnvelope::new(0xDEAD_BEEF_CAFE_F00D, Request::Ping);
    assert_eq!(salvage_request_id(&env.encode()), 0xDEAD_BEEF_CAFE_F00D);
}

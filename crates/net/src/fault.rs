//! # Fault injection for chaos testing (feature `fault-inject`)
//!
//! [`FaultInjector`] wraps a [`TcpStream`] and sabotages the **write**
//! side on a deterministic, seeded schedule: truncating frames mid-body,
//! stalling mid-frame, flipping bits, or dropping the connection outright
//! while claiming success. The read side passes through untouched, so a
//! chaos test can still observe whatever the server manages to answer.
//!
//! Everything is seeded — `tests/chaos.rs` replays the exact same byte
//! stream every run, which keeps "server survives fault N" a regression
//! test rather than a flake generator.
//!
//! This module is compiled only under the `fault-inject` cargo feature
//! (enabled from the workspace's dev-dependencies); release builds of the
//! serving binaries never contain it.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use rand::{rngs::StdRng, Rng, SeedableRng};

/// One sabotage mode applied to a connection's write side.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// Deliver writes untouched.
    None,
    /// Deliver only the first `n` bytes, then shut down the write side —
    /// the peer sees a clean-looking stream that ends mid-frame. Writes
    /// past the limit still claim success (the worst case for the peer).
    TruncateAfter {
        /// Bytes delivered before the cut.
        n: usize,
    },
    /// Deliver the first `n` bytes, then drop the whole connection
    /// (`Shutdown::Both`) while claiming the write succeeded.
    DropAfter {
        /// Bytes delivered before the drop.
        n: usize,
    },
    /// Sleep `pause` immediately before delivering byte `offset` — a
    /// mid-frame stall that parks the peer's read loop on a partial frame.
    StallAt {
        /// Byte offset the stall precedes.
        offset: usize,
        /// How long to stall.
        pause: Duration,
    },
    /// Flip one random bit in each delivered byte with probability
    /// `per_mille`/1000, using the injector's seeded rng.
    CorruptBits {
        /// Corruption probability in thousandths.
        per_mille: u32,
    },
}

/// A seeded [`TcpStream`] wrapper that injects one [`Fault`] into the
/// write side. Reads pass through. See the module docs.
pub struct FaultInjector {
    inner: TcpStream,
    fault: Fault,
    rng: StdRng,
    written: usize,
    severed: bool,
}

impl FaultInjector {
    /// Wraps `stream`, applying `fault`; `seed` drives bit corruption.
    pub fn new(stream: TcpStream, fault: Fault, seed: u64) -> Self {
        Self {
            inner: stream,
            fault,
            rng: StdRng::seed_from_u64(seed),
            written: 0,
            severed: false,
        }
    }

    /// Total bytes actually delivered to the peer.
    pub fn delivered(&self) -> usize {
        self.written.min(match self.fault {
            Fault::TruncateAfter { n } | Fault::DropAfter { n } => n,
            _ => usize::MAX,
        })
    }

    /// The wrapped stream (reads are never sabotaged).
    pub fn stream(&self) -> &TcpStream {
        &self.inner
    }

    fn deliver(&mut self, buf: &[u8]) -> io::Result<()> {
        if let Fault::CorruptBits { per_mille } = self.fault {
            let mut corrupted = buf.to_vec();
            for byte in &mut corrupted {
                if self.rng.gen_range(0u32..1000) < per_mille {
                    *byte ^= 1u8 << self.rng.gen_range(0u32..8);
                }
            }
            self.inner.write_all(&corrupted)
        } else {
            self.inner.write_all(buf)
        }
    }
}

impl Write for FaultInjector {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.severed {
            // Keep claiming success after the cut: the caller believes the
            // request went out, which is exactly the ambiguity a retry
            // policy has to cope with.
            self.written += buf.len();
            return Ok(buf.len());
        }
        match self.fault {
            Fault::TruncateAfter { n } | Fault::DropAfter { n } => {
                let budget = n.saturating_sub(self.written);
                let deliver = budget.min(buf.len());
                if deliver > 0 {
                    self.deliver(&buf[..deliver])?;
                }
                if self.written + buf.len() >= n {
                    let how = if matches!(self.fault, Fault::DropAfter { .. }) {
                        Shutdown::Both
                    } else {
                        Shutdown::Write
                    };
                    let _ = self.inner.shutdown(how);
                    self.severed = true;
                }
            }
            Fault::StallAt { offset, pause } => {
                if self.written <= offset && offset < self.written + buf.len() {
                    let pre = offset - self.written;
                    if pre > 0 {
                        self.deliver(&buf[..pre])?;
                    }
                    std::thread::sleep(pause);
                    self.deliver(&buf[pre..])?;
                } else {
                    self.deliver(buf)?;
                }
            }
            Fault::None | Fault::CorruptBits { .. } => self.deliver(buf)?,
        }
        self.written += buf.len();
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.severed {
            Ok(())
        } else {
            self.inner.flush()
        }
    }
}

impl Read for FaultInjector {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

/// A deterministic stream of faults: each call to [`next_fault`] yields
/// a pseudo-random sabotage mode drawn from the seed, so a chaos loop
/// can hammer a server with a reproducible mixed schedule.
///
/// [`next_fault`]: FaultSchedule::next_fault
pub struct FaultSchedule {
    rng: StdRng,
}

impl FaultSchedule {
    /// Schedule seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws the next fault. `frame_len` should approximate the bytes the
    /// connection is about to send, so cut points land mid-frame.
    pub fn next_fault(&mut self, frame_len: usize) -> Fault {
        let cap = frame_len.max(2);
        match self.rng.gen_range(0u32..5) {
            0 => Fault::None,
            1 => Fault::TruncateAfter {
                n: self.rng.gen_range(1..cap),
            },
            2 => Fault::DropAfter {
                n: self.rng.gen_range(1..cap),
            },
            3 => Fault::StallAt {
                offset: self.rng.gen_range(1..cap),
                pause: Duration::from_millis(self.rng.gen_range(1u64..40)),
            },
            _ => Fault::CorruptBits {
                per_mille: self.rng.gen_range(20u32..200),
            },
        }
    }

    /// Fresh per-connection corruption seed.
    pub fn next_seed(&mut self) -> u64 {
        self.rng.gen_range(0u64..u64::MAX)
    }
}

#![warn(missing_docs)]

//! # lsbp-net — the propagation-as-a-service wire protocol
//!
//! A small, dependency-free binary protocol for serving LinBP/RWR queries
//! over TCP (`std::net` only — no async runtime). Every message is one
//! **frame**: a little-endian `u32` payload length followed by the
//! payload, which is a tag byte plus the fields of one [`Request`] or
//! [`Response`] variant. All integers are little-endian; every `f64`
//! travels as its IEEE-754 **bit pattern** (`to_bits`/`from_bits`), so a
//! belief matrix decoded on the client is bitwise identical to the one
//! the server computed — the protocol never perturbs a ulp.
//!
//! Robustness rules (property-tested in `tests/protocol_roundtrip.rs`):
//!
//! * a frame whose length prefix exceeds [`MAX_FRAME_LEN`] is rejected
//!   before any allocation ([`WireError::OversizedFrame`]),
//! * a payload that ends mid-field decodes to [`WireError::Truncated`],
//!   never a panic or a partial value,
//! * collection length prefixes are checked against the bytes actually
//!   remaining, so a hostile length cannot force a huge allocation,
//! * bytes left over after a complete message are an error
//!   ([`WireError::TrailingBytes`]) — messages are exact, not prefixes.

use std::fmt;
use std::io::{self, Read, Write};

/// Protocol revision carried in [`Response::Pong`].
///
/// Version history:
/// * **1** — initial serving protocol (PR 6): bare `Request`/`Response`
///   payloads, one frame per message.
/// * **2** — fault-tolerance revision (PR 7): frames carry
///   [`RequestEnvelope`]/[`ResponseEnvelope`] (a `request_id` echoed in
///   every reply plus an optional `deadline_ms` budget),
///   [`Response::Error`] gains a `retry_after_ms` hint,
///   [`ErrorCode::DeadlineExceeded`], [`ServedVia::Stale`], and the
///   [`Request::Health`]/[`Response::Health`] probe.
/// * **3** — out-of-core revision (PR 8): [`ServerStats`] and
///   [`HealthInfo`] grow the buffer-pool pager counters
///   (`pager_hits`/`pager_misses`/`pager_evictions`/`pager_prefetches`),
///   and [`HealthInfo`] reports whether the server spills registered
///   graphs to disk (`spill_enabled`).
/// * **4** — active-frontier revision: [`ServerStats`] and
///   [`HealthInfo`] grow the frontier row counters
///   (`frontier_rows_active`/`frontier_rows_skipped`) — additive
///   trailing fields, appended after the pager counters.
pub const PROTOCOL_VERSION: u16 = 4;

/// Hard cap on a frame payload (length prefix), checked before any
/// allocation. Large enough for a multi-million-edge graph registration,
/// small enough to bound a hostile client's damage.
pub const MAX_FRAME_LEN: usize = 256 * 1024 * 1024;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Decode/transport errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The payload (or the 4-byte frame header) ended before a field was
    /// complete.
    Truncated,
    /// The frame length prefix exceeds [`MAX_FRAME_LEN`].
    OversizedFrame(u64),
    /// A complete message decoded but bytes remain.
    TrailingBytes(usize),
    /// An enum tag byte (or code) outside the protocol.
    UnknownTag {
        /// Which enum the tag belonged to.
        kind: &'static str,
        /// The offending byte value.
        tag: u16,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Underlying socket error.
    Io(io::ErrorKind),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated mid-field"),
            WireError::OversizedFrame(len) => {
                write!(f, "frame length {len} exceeds cap {MAX_FRAME_LEN}")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::UnknownTag { kind, tag } => write!(f, "unknown {kind} tag {tag}"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::Io(kind) => write!(f, "socket error: {kind:?}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e.kind())
        }
    }
}

// ---------------------------------------------------------------------------
// Byte-level reader/writer
// ---------------------------------------------------------------------------

/// Append-only payload builder.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes and returns the payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its little-endian bit pattern (exact — NaN
    /// payloads and signed zeros survive the trip).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed `f64` slice.
    pub fn f64s(&mut self, xs: &[f64]) {
        self.u64(xs.len() as u64);
        for &x in xs {
            self.f64(x);
        }
    }
}

/// Cursor over a payload with truncation-checked reads.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool byte (any non-zero is `true`).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        Ok(self.u8()? != 0)
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a collection length prefix and checks it against the bytes
    /// remaining (`min_elem_bytes` per element), so a hostile prefix can
    /// neither over-allocate nor pass a truncated body.
    pub fn len_prefix(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let len = self.u64()?;
        let need = (len as u128) * (min_elem_bytes.max(1) as u128);
        if need > self.remaining() as u128 {
            return Err(WireError::Truncated);
        }
        Ok(len as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, WireError> {
        let len = self.len_prefix(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn f64s(&mut self) -> Result<Vec<f64>, WireError> {
        let len = self.len_prefix(8)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    /// Errors unless every byte was consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            Err(WireError::TrailingBytes(self.remaining()))
        } else {
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Shared message pieces
// ---------------------------------------------------------------------------

/// One weighted directed edge (or an additive weight *delta* in
/// [`Request::EdgeDelta`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireEdge {
    /// Source node id.
    pub src: u64,
    /// Target node id.
    pub dst: u64,
    /// Edge weight (or weight delta).
    pub weight: f64,
}

/// One labeled node of a query seed-set: a residual belief row (sums to
/// zero) for `node`.
#[derive(Clone, Debug, PartialEq)]
pub struct WireSeed {
    /// Node id.
    pub node: u64,
    /// Residual belief vector, length `k`.
    pub residual: Vec<f64>,
}

/// Convergence norm selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireNorm {
    /// Largest absolute entry change.
    MaxAbs,
    /// Euclidean norm of the change.
    L2,
}

impl WireNorm {
    fn encode(self, w: &mut WireWriter) {
        w.u8(match self {
            WireNorm::MaxAbs => 0,
            WireNorm::L2 => 1,
        });
    }

    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(WireNorm::MaxAbs),
            1 => Ok(WireNorm::L2),
            t => Err(WireError::UnknownTag {
                kind: "WireNorm",
                tag: t as u16,
            }),
        }
    }
}

/// Solve knobs for a LinBP/LinBP\* query. Two queries are **coalescible**
/// (stackable into one batched solve) iff their params are bitwise
/// identical and they target the same graph version.
#[derive(Clone, Debug, PartialEq)]
pub struct LinBpParams {
    /// `true` = LinBP (Eq. 6, echo cancellation), `false` = LinBP\* (Eq. 7).
    pub echo: bool,
    /// Number of classes.
    pub k: u32,
    /// Scaled residual coupling matrix `Ĥ`, row-major `k × k`.
    pub h_residual: Vec<f64>,
    /// Maximum update rounds.
    pub max_iter: u64,
    /// Convergence threshold.
    pub tol: f64,
    /// Norm the threshold is measured in.
    pub norm: WireNorm,
    /// Update damping `λ ∈ [0, 1)`.
    pub damping: f64,
    /// Belief magnitude beyond which the run is declared divergent.
    pub divergence_guard: f64,
}

impl LinBpParams {
    fn encode(&self, w: &mut WireWriter) {
        w.bool(self.echo);
        w.u32(self.k);
        w.f64s(&self.h_residual);
        w.u64(self.max_iter);
        w.f64(self.tol);
        self.norm.encode(w);
        w.f64(self.damping);
        w.f64(self.divergence_guard);
    }

    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(Self {
            echo: r.bool()?,
            k: r.u32()?,
            h_residual: r.f64s()?,
            max_iter: r.u64()?,
            tol: r.f64()?,
            norm: WireNorm::decode(r)?,
            damping: r.f64()?,
            divergence_guard: r.f64()?,
        })
    }
}

/// Solve knobs for a random-walk-with-restart query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RwrParams {
    /// Number of classes.
    pub k: u32,
    /// Restart probability `α ∈ (0, 1]`.
    pub restart: f64,
    /// Maximum power iterations.
    pub max_iter: u64,
    /// Convergence threshold.
    pub tol: f64,
    /// Norm the threshold is measured in.
    pub norm: WireNorm,
}

impl RwrParams {
    fn encode(&self, w: &mut WireWriter) {
        w.u32(self.k);
        w.f64(self.restart);
        w.u64(self.max_iter);
        w.f64(self.tol);
        self.norm.encode(w);
    }

    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(Self {
            k: r.u32()?,
            restart: r.f64()?,
            max_iter: r.u64()?,
            tol: r.f64()?,
            norm: WireNorm::decode(r)?,
        })
    }
}

fn encode_edges(w: &mut WireWriter, edges: &[WireEdge]) {
    w.u64(edges.len() as u64);
    for e in edges {
        w.u64(e.src);
        w.u64(e.dst);
        w.f64(e.weight);
    }
}

fn decode_edges(r: &mut WireReader) -> Result<Vec<WireEdge>, WireError> {
    let len = r.len_prefix(24)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(WireEdge {
            src: r.u64()?,
            dst: r.u64()?,
            weight: r.f64()?,
        });
    }
    Ok(out)
}

fn encode_seeds(w: &mut WireWriter, seeds: &[WireSeed]) {
    w.u64(seeds.len() as u64);
    for s in seeds {
        w.u64(s.node);
        w.f64s(&s.residual);
    }
}

fn decode_seeds(r: &mut WireReader) -> Result<Vec<WireSeed>, WireError> {
    let len = r.len_prefix(16)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(WireSeed {
            node: r.u64()?,
            residual: r.f64s()?,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Client → server messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness / protocol-version probe.
    Ping,
    /// Registers a graph under `graph_id` (rejected if the id is taken).
    /// The CSR (and, when the server is configured with shards, the
    /// `ShardedCsr` layout) is built **once** here; every subsequent solve
    /// reuses it.
    RegisterGraph {
        /// Caller-chosen graph id.
        graph_id: u64,
        /// Number of nodes.
        n_nodes: u64,
        /// When `true` every edge is inserted in both directions.
        symmetric: bool,
        /// Weighted edges.
        edges: Vec<WireEdge>,
    },
    /// A LinBP/LinBP\* labeling query over a registered graph.
    SolveLinBp {
        /// Target graph.
        graph_id: u64,
        /// Solve knobs (coalescing key together with `graph_id`).
        params: LinBpParams,
        /// The query's explicit beliefs (sparse residual rows).
        seeds: Vec<WireSeed>,
    },
    /// A random-walk-with-restart query over a registered graph.
    SolveRwr {
        /// Target graph.
        graph_id: u64,
        /// Solve knobs.
        params: RwrParams,
        /// Per-class seed nodes (positive residual entries mark class
        /// membership).
        seeds: Vec<WireSeed>,
    },
    /// Applies additive edge-weight deltas to a registered graph, bumping
    /// its version. Cached LinBP beliefs are **patched** (incremental
    /// maintenance by linearity) instead of invalidated; cached RWR
    /// scores are invalidated.
    EdgeDelta {
        /// Target graph.
        graph_id: u64,
        /// Apply each delta in both directions.
        symmetric: bool,
        /// Additive weight deltas (`new_w = old_w + weight`; entries
        /// reaching exactly 0 are pruned).
        deltas: Vec<WireEdge>,
    },
    /// Server counters (coalescing, cache, SpMM passes).
    Stats,
    /// Asks the server to exit after flushing responses.
    Shutdown,
    /// Lightweight liveness probe answered inline (never queued behind
    /// solves): queue depth, cache size, uptime.
    Health,
}

impl Request {
    /// Serializes to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            Request::Ping => w.u8(0),
            Request::RegisterGraph {
                graph_id,
                n_nodes,
                symmetric,
                edges,
            } => {
                w.u8(1);
                w.u64(*graph_id);
                w.u64(*n_nodes);
                w.bool(*symmetric);
                encode_edges(&mut w, edges);
            }
            Request::SolveLinBp {
                graph_id,
                params,
                seeds,
            } => {
                w.u8(2);
                w.u64(*graph_id);
                params.encode(&mut w);
                encode_seeds(&mut w, seeds);
            }
            Request::SolveRwr {
                graph_id,
                params,
                seeds,
            } => {
                w.u8(3);
                w.u64(*graph_id);
                params.encode(&mut w);
                encode_seeds(&mut w, seeds);
            }
            Request::EdgeDelta {
                graph_id,
                symmetric,
                deltas,
            } => {
                w.u8(4);
                w.u64(*graph_id);
                w.bool(*symmetric);
                encode_edges(&mut w, deltas);
            }
            Request::Stats => w.u8(5),
            Request::Shutdown => w.u8(6),
            Request::Health => w.u8(7),
        }
        w.into_bytes()
    }

    /// Deserializes a frame payload (must consume every byte).
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let req = Self::decode_body(&mut r)?;
        r.finish()?;
        Ok(req)
    }

    fn decode_body(r: &mut WireReader) -> Result<Self, WireError> {
        let req = match r.u8()? {
            0 => Request::Ping,
            1 => Request::RegisterGraph {
                graph_id: r.u64()?,
                n_nodes: r.u64()?,
                symmetric: r.bool()?,
                edges: decode_edges(r)?,
            },
            2 => Request::SolveLinBp {
                graph_id: r.u64()?,
                params: LinBpParams::decode(r)?,
                seeds: decode_seeds(r)?,
            },
            3 => Request::SolveRwr {
                graph_id: r.u64()?,
                params: RwrParams::decode(r)?,
                seeds: decode_seeds(r)?,
            },
            4 => Request::EdgeDelta {
                graph_id: r.u64()?,
                symmetric: r.bool()?,
                deltas: decode_edges(r)?,
            },
            5 => Request::Stats,
            6 => Request::Shutdown,
            7 => Request::Health,
            t => {
                return Err(WireError::UnknownTag {
                    kind: "Request",
                    tag: t as u16,
                })
            }
        };
        Ok(req)
    }

    /// `true` for requests that are safe to retry after an ambiguous
    /// failure: they either do not mutate server state (`Ping`, `Health`,
    /// `Stats`) or are derived deterministically from registered state
    /// (solves). Registration, deltas, and shutdown are **not** idempotent.
    pub fn is_idempotent(&self) -> bool {
        matches!(
            self,
            Request::Ping
                | Request::Health
                | Request::Stats
                | Request::SolveLinBp { .. }
                | Request::SolveRwr { .. }
        )
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// How a belief response was produced — surfaced so clients (and tests)
/// can observe coalescing and caching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServedVia {
    /// Solved alone (batch of one).
    Solo,
    /// Stacked with `batch - 1` other queries into one batched solve.
    Coalesced {
        /// Total queries in the stacked solve.
        batch: u32,
    },
    /// Returned from the belief cache unchanged.
    Cache,
    /// Returned from the belief cache after an edge-delta patch.
    CachePatched,
    /// Graceful degradation: served from a cache entry computed against
    /// an **older graph version** because the server was overloaded.
    /// The beliefs are still bitwise equal to a library solve — of the
    /// stale version, not the current one.
    Stale {
        /// Graph version the cached answer was computed against.
        version: u64,
    },
}

impl ServedVia {
    fn encode(self, w: &mut WireWriter) {
        match self {
            ServedVia::Solo => w.u8(0),
            ServedVia::Coalesced { batch } => {
                w.u8(1);
                w.u32(batch);
            }
            ServedVia::Cache => w.u8(2),
            ServedVia::CachePatched => w.u8(3),
            ServedVia::Stale { version } => {
                w.u8(4);
                w.u64(version);
            }
        }
    }

    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(ServedVia::Solo),
            1 => Ok(ServedVia::Coalesced { batch: r.u32()? }),
            2 => Ok(ServedVia::Cache),
            3 => Ok(ServedVia::CachePatched),
            4 => Ok(ServedVia::Stale { version: r.u64()? }),
            t => Err(WireError::UnknownTag {
                kind: "ServedVia",
                tag: t as u16,
            }),
        }
    }
}

/// Machine-readable error category.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// No graph registered under the requested id.
    UnknownGraph,
    /// A graph is already registered under the requested id.
    GraphAlreadyRegistered,
    /// The request failed validation (ids out of range, non-finite or
    /// uncentered seeds, bad params, …) — the message says exactly why.
    BadRequest,
    /// Admission queue full: the client should back off and retry.
    Overloaded,
    /// Unexpected server-side failure.
    Internal,
    /// The request's `deadline_ms` budget expired before (or while) the
    /// query was waiting for a solve slot. Retryable with a fresh budget.
    DeadlineExceeded,
}

impl ErrorCode {
    fn encode(self, w: &mut WireWriter) {
        w.u16(match self {
            ErrorCode::UnknownGraph => 0,
            ErrorCode::GraphAlreadyRegistered => 1,
            ErrorCode::BadRequest => 2,
            ErrorCode::Overloaded => 3,
            ErrorCode::Internal => 4,
            ErrorCode::DeadlineExceeded => 5,
        });
    }

    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        match r.u16()? {
            0 => Ok(ErrorCode::UnknownGraph),
            1 => Ok(ErrorCode::GraphAlreadyRegistered),
            2 => Ok(ErrorCode::BadRequest),
            3 => Ok(ErrorCode::Overloaded),
            4 => Ok(ErrorCode::Internal),
            5 => Ok(ErrorCode::DeadlineExceeded),
            t => Err(WireError::UnknownTag {
                kind: "ErrorCode",
                tag: t,
            }),
        }
    }
}

/// A solved (or cached) belief matrix plus run metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct BeliefsPayload {
    /// Number of nodes.
    pub n: u64,
    /// Number of classes.
    pub k: u32,
    /// Residual beliefs, row-major `n × k`, bit-exact.
    pub beliefs: Vec<f64>,
    /// Whether the run met its tolerance.
    pub converged: bool,
    /// Whether the divergence guard tripped.
    pub diverged: bool,
    /// Update rounds executed.
    pub iterations: u64,
    /// Last round's belief change.
    pub final_delta: f64,
    /// How the answer was produced.
    pub served: ServedVia,
}

/// Server counters, all monotone since startup.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Registered graphs.
    pub graphs: u64,
    /// Live belief-cache entries.
    pub cached_entries: u64,
    /// Belief queries answered (any path).
    pub queries_served: u64,
    /// Queries answered straight from the cache.
    pub cache_hits: u64,
    /// Batched solves containing ≥ 2 queries.
    pub coalesced_batches: u64,
    /// Queries answered through a ≥ 2-query batch.
    pub coalesced_queries: u64,
    /// Largest batch stacked so far.
    pub largest_batch: u64,
    /// SpMM sweeps actually executed by batched solves.
    pub spmm_passes: u64,
    /// SpMM sweeps the same queries would have cost solved one by one
    /// (Σ per-query iterations) — `spmm_passes` vs. this is the
    /// amortization the coalescer buys.
    pub spmm_passes_sequential_equiv: u64,
    /// Cache entries patched forward through edge deltas.
    pub patched_entries: u64,
    /// Cache entries invalidated by edge deltas (RWR scores).
    pub invalidated_entries: u64,
    /// Queries rejected because the admission queue was full.
    pub rejected_overloaded: u64,
    /// Queries answered `DeadlineExceeded` (expired at admission or while
    /// parked in a coalescing group).
    pub rejected_deadline: u64,
    /// Requests rejected by validation (`BadRequest`, `UnknownGraph`,
    /// `GraphAlreadyRegistered`).
    pub rejected_invalid: u64,
    /// Solver panics caught by the isolation boundary (each answered its
    /// batch with `Internal` and left the event loop running).
    pub panics_caught: u64,
    /// Queries served stale from an older graph version under the
    /// `StaleCache` degradation policy.
    pub degraded_stale: u64,
    /// Queries admitted with a clamped `max_iter` under the `ClampIter`
    /// degradation policy.
    pub degraded_clamped: u64,
    /// Buffer-pool accesses served by an already-resident shard block
    /// (zero when the server runs fully in memory).
    pub pager_hits: u64,
    /// Buffer-pool demand loads that read a shard block from disk.
    pub pager_misses: u64,
    /// Shard blocks evicted to stay under the memory budget.
    pub pager_evictions: u64,
    /// Shard blocks loaded ahead of the kernels by the prefetch thread.
    pub pager_prefetches: u64,
    /// LinBP rows recomputed by served solves (active-frontier
    /// execution; with the frontier off this is simply rows × rounds).
    pub frontier_rows_active: u64,
    /// LinBP rows skipped by served solves because their inputs were
    /// bitwise unchanged since the previous round.
    pub frontier_rows_skipped: u64,
}

impl ServerStats {
    fn encode(&self, w: &mut WireWriter) {
        for v in [
            self.graphs,
            self.cached_entries,
            self.queries_served,
            self.cache_hits,
            self.coalesced_batches,
            self.coalesced_queries,
            self.largest_batch,
            self.spmm_passes,
            self.spmm_passes_sequential_equiv,
            self.patched_entries,
            self.invalidated_entries,
            self.rejected_overloaded,
            self.rejected_deadline,
            self.rejected_invalid,
            self.panics_caught,
            self.degraded_stale,
            self.degraded_clamped,
            self.pager_hits,
            self.pager_misses,
            self.pager_evictions,
            self.pager_prefetches,
            self.frontier_rows_active,
            self.frontier_rows_skipped,
        ] {
            w.u64(v);
        }
    }

    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(Self {
            graphs: r.u64()?,
            cached_entries: r.u64()?,
            queries_served: r.u64()?,
            cache_hits: r.u64()?,
            coalesced_batches: r.u64()?,
            coalesced_queries: r.u64()?,
            largest_batch: r.u64()?,
            spmm_passes: r.u64()?,
            spmm_passes_sequential_equiv: r.u64()?,
            patched_entries: r.u64()?,
            invalidated_entries: r.u64()?,
            rejected_overloaded: r.u64()?,
            rejected_deadline: r.u64()?,
            rejected_invalid: r.u64()?,
            panics_caught: r.u64()?,
            degraded_stale: r.u64()?,
            degraded_clamped: r.u64()?,
            pager_hits: r.u64()?,
            pager_misses: r.u64()?,
            pager_evictions: r.u64()?,
            pager_prefetches: r.u64()?,
            frontier_rows_active: r.u64()?,
            frontier_rows_skipped: r.u64()?,
        })
    }
}

/// Reply payload of [`Request::Health`] — cheap liveness data a load
/// balancer or retry loop can poll without queueing behind solves.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthInfo {
    /// The server's [`PROTOCOL_VERSION`].
    pub protocol_version: u16,
    /// Registered graphs.
    pub graphs: u64,
    /// Queries currently parked in coalescing groups.
    pub queue_depth: u64,
    /// Live belief-cache entries.
    pub cached_entries: u64,
    /// Milliseconds since the core started.
    pub uptime_ms: u64,
    /// Whether registered graphs spill to an on-disk shard store (the
    /// server was started with a spill directory).
    pub spill_enabled: bool,
    /// Buffer-pool hits since startup (see [`ServerStats::pager_hits`]).
    pub pager_hits: u64,
    /// Buffer-pool demand loads since startup.
    pub pager_misses: u64,
    /// Buffer-pool evictions since startup.
    pub pager_evictions: u64,
    /// Buffer-pool prefetch loads since startup.
    pub pager_prefetches: u64,
    /// LinBP rows recomputed by served solves since startup (see
    /// [`ServerStats::frontier_rows_active`]).
    pub frontier_rows_active: u64,
    /// LinBP rows skipped by served solves since startup (bitwise
    /// unchanged inputs; see [`ServerStats::frontier_rows_skipped`]).
    pub frontier_rows_skipped: u64,
}

impl HealthInfo {
    fn encode(&self, w: &mut WireWriter) {
        w.u16(self.protocol_version);
        w.u64(self.graphs);
        w.u64(self.queue_depth);
        w.u64(self.cached_entries);
        w.u64(self.uptime_ms);
        w.bool(self.spill_enabled);
        w.u64(self.pager_hits);
        w.u64(self.pager_misses);
        w.u64(self.pager_evictions);
        w.u64(self.pager_prefetches);
        w.u64(self.frontier_rows_active);
        w.u64(self.frontier_rows_skipped);
    }

    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(Self {
            protocol_version: r.u16()?,
            graphs: r.u64()?,
            queue_depth: r.u64()?,
            cached_entries: r.u64()?,
            uptime_ms: r.u64()?,
            spill_enabled: r.bool()?,
            pager_hits: r.u64()?,
            pager_misses: r.u64()?,
            pager_evictions: r.u64()?,
            pager_prefetches: r.u64()?,
            frontier_rows_active: r.u64()?,
            frontier_rows_skipped: r.u64()?,
        })
    }
}

/// Server → client messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong {
        /// The server's [`PROTOCOL_VERSION`].
        protocol_version: u16,
    },
    /// Reply to [`Request::RegisterGraph`].
    Registered {
        /// Echoed graph id.
        graph_id: u64,
        /// Initial graph version (1).
        version: u64,
        /// Node count.
        n_nodes: u64,
        /// Stored (directed) entries in the built CSR.
        nnz: u64,
    },
    /// Reply to a solve request.
    Beliefs(BeliefsPayload),
    /// Reply to [`Request::EdgeDelta`].
    DeltaApplied {
        /// Echoed graph id.
        graph_id: u64,
        /// New graph version.
        version: u64,
        /// Cached belief entries patched forward to the new version.
        patched: u64,
        /// Cached entries invalidated instead.
        invalidated: u64,
    },
    /// Any failure.
    Error {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
        /// For `Overloaded`/`DeadlineExceeded`: how long the client
        /// should wait before retrying. `None` = no hint.
        retry_after_ms: Option<u64>,
    },
    /// Reply to [`Request::Stats`].
    Stats(ServerStats),
    /// Reply to [`Request::Shutdown`]; the connection closes after this.
    ShuttingDown,
    /// Reply to [`Request::Health`].
    Health(HealthInfo),
}

impl Response {
    /// Serializes to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            Response::Pong { protocol_version } => {
                w.u8(0);
                w.u16(*protocol_version);
            }
            Response::Registered {
                graph_id,
                version,
                n_nodes,
                nnz,
            } => {
                w.u8(1);
                w.u64(*graph_id);
                w.u64(*version);
                w.u64(*n_nodes);
                w.u64(*nnz);
            }
            Response::Beliefs(p) => {
                w.u8(2);
                w.u64(p.n);
                w.u32(p.k);
                w.f64s(&p.beliefs);
                w.bool(p.converged);
                w.bool(p.diverged);
                w.u64(p.iterations);
                w.f64(p.final_delta);
                p.served.encode(&mut w);
            }
            Response::DeltaApplied {
                graph_id,
                version,
                patched,
                invalidated,
            } => {
                w.u8(3);
                w.u64(*graph_id);
                w.u64(*version);
                w.u64(*patched);
                w.u64(*invalidated);
            }
            Response::Error {
                code,
                message,
                retry_after_ms,
            } => {
                w.u8(4);
                code.encode(&mut w);
                w.string(message);
                match retry_after_ms {
                    Some(ms) => {
                        w.bool(true);
                        w.u64(*ms);
                    }
                    None => w.bool(false),
                }
            }
            Response::Stats(s) => {
                w.u8(5);
                s.encode(&mut w);
            }
            Response::ShuttingDown => w.u8(6),
            Response::Health(h) => {
                w.u8(7);
                h.encode(&mut w);
            }
        }
        w.into_bytes()
    }

    /// Deserializes a frame payload (must consume every byte).
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let resp = Self::decode_body(&mut r)?;
        r.finish()?;
        Ok(resp)
    }

    fn decode_body(r: &mut WireReader) -> Result<Self, WireError> {
        let resp = match r.u8()? {
            0 => Response::Pong {
                protocol_version: r.u16()?,
            },
            1 => Response::Registered {
                graph_id: r.u64()?,
                version: r.u64()?,
                n_nodes: r.u64()?,
                nnz: r.u64()?,
            },
            2 => Response::Beliefs(BeliefsPayload {
                n: r.u64()?,
                k: r.u32()?,
                beliefs: r.f64s()?,
                converged: r.bool()?,
                diverged: r.bool()?,
                iterations: r.u64()?,
                final_delta: r.f64()?,
                served: ServedVia::decode(r)?,
            }),
            3 => Response::DeltaApplied {
                graph_id: r.u64()?,
                version: r.u64()?,
                patched: r.u64()?,
                invalidated: r.u64()?,
            },
            4 => Response::Error {
                code: ErrorCode::decode(r)?,
                message: r.string()?,
                retry_after_ms: if r.bool()? { Some(r.u64()?) } else { None },
            },
            5 => Response::Stats(ServerStats::decode(r)?),
            6 => Response::ShuttingDown,
            7 => Response::Health(HealthInfo::decode(r)?),
            t => {
                return Err(WireError::UnknownTag {
                    kind: "Response",
                    tag: t as u16,
                })
            }
        };
        Ok(resp)
    }
}

// ---------------------------------------------------------------------------
// Envelopes (protocol v2)
// ---------------------------------------------------------------------------

/// A v2 request frame: client-chosen correlation id, optional deadline
/// budget, and the request body. The server echoes `request_id` in the
/// matching [`ResponseEnvelope`], so pipelined clients can match answers
/// to questions and retry loops can discard late replies from a previous
/// attempt.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestEnvelope {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub request_id: u64,
    /// Optional time budget in milliseconds, measured by the server from
    /// the moment the frame is decoded. A query whose budget expires
    /// before its solve starts is answered [`ErrorCode::DeadlineExceeded`]
    /// without burning a solve slot.
    pub deadline_ms: Option<u64>,
    /// The request body.
    pub request: Request,
}

impl RequestEnvelope {
    /// Wraps a request with no deadline.
    pub fn new(request_id: u64, request: Request) -> Self {
        Self {
            request_id,
            deadline_ms: None,
            request,
        }
    }

    /// Serializes to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(self.request_id);
        match self.deadline_ms {
            Some(ms) => {
                w.bool(true);
                w.u64(ms);
            }
            None => w.bool(false),
        }
        w.buf.extend_from_slice(&self.request.encode());
        w.into_bytes()
    }

    /// Deserializes a frame payload (must consume every byte).
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let request_id = r.u64()?;
        let deadline_ms = if r.bool()? { Some(r.u64()?) } else { None };
        let request = Request::decode_body(&mut r)?;
        r.finish()?;
        Ok(Self {
            request_id,
            deadline_ms,
            request,
        })
    }
}

/// A v2 response frame: the echoed `request_id` plus the response body.
#[derive(Clone, Debug, PartialEq)]
pub struct ResponseEnvelope {
    /// The id from the request this answers (0 when the request was too
    /// mangled to recover one).
    pub request_id: u64,
    /// The response body.
    pub response: Response,
}

impl ResponseEnvelope {
    /// Wraps a response.
    pub fn new(request_id: u64, response: Response) -> Self {
        Self {
            request_id,
            response,
        }
    }

    /// Serializes to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(self.request_id);
        w.buf.extend_from_slice(&self.response.encode());
        w.into_bytes()
    }

    /// Deserializes a frame payload (must consume every byte).
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let request_id = r.u64()?;
        let response = Response::decode_body(&mut r)?;
        r.finish()?;
        Ok(Self {
            request_id,
            response,
        })
    }
}

/// Best-effort salvage of the correlation id from a frame that failed
/// [`RequestEnvelope::decode`]: the id is the first 8 bytes, so it is
/// recoverable even when the body is garbage. Returns 0 when even the id
/// was truncated.
pub fn salvage_request_id(bytes: &[u8]) -> u64 {
    if bytes.len() >= 8 {
        u64::from_le_bytes(bytes[..8].try_into().unwrap())
    } else {
        0
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one frame (length prefix + payload) to a blocking stream.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    assert!(payload.len() <= MAX_FRAME_LEN, "outgoing frame exceeds cap");
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame from a blocking stream. `Ok(None)` = clean EOF at a
/// frame boundary; EOF mid-frame is [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None)
                } else {
                    Err(WireError::Truncated)
                }
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::OversizedFrame(len as u64));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Non-blocking framing: if `buf` starts with a complete frame, removes
/// and returns its payload; `Ok(None)` = need more bytes. Rejects an
/// oversized length prefix immediately (before the body arrives).
pub fn extract_frame(buf: &mut Vec<u8>) -> Result<Option<Vec<u8>>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::OversizedFrame(len as u64));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let payload = buf[4..4 + len].to_vec();
    buf.drain(..4 + len);
    Ok(Some(payload))
}

/// Cheap mid-read guard: once at least 4 bytes of a frame header have
/// accumulated, returns `Some(claimed_len)` if the length prefix exceeds
/// [`MAX_FRAME_LEN`]. Lets a read loop reject an oversized claim **while
/// bytes are still dribbling in**, instead of buffering until the socket
/// drains. `None` = header incomplete or length acceptable.
pub fn oversized_claim(buf: &[u8]) -> Option<u64> {
    if buf.len() < 4 {
        return None;
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as u64;
    if len as usize > MAX_FRAME_LEN {
        Some(len)
    } else {
        None
    }
}

#[cfg(feature = "fault-inject")]
pub mod fault;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_blocking() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_header_is_an_error() {
        let mut cursor = io::Cursor::new(vec![1u8, 0]);
        assert_eq!(read_frame(&mut cursor), Err(WireError::Truncated));
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        let mut bytes = (u32::MAX).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 16]);
        let mut cursor = io::Cursor::new(bytes.clone());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::OversizedFrame(_))
        ));
        let mut buf = bytes;
        assert!(matches!(
            extract_frame(&mut buf),
            Err(WireError::OversizedFrame(_))
        ));
    }

    #[test]
    fn extract_frame_waits_for_completion() {
        let payload = Request::Ping.encode();
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();
        let mut buf = Vec::new();
        for &b in &framed[..framed.len() - 1] {
            buf.push(b);
            assert_eq!(extract_frame(&mut buf), Ok(None));
        }
        buf.push(*framed.last().unwrap());
        assert_eq!(extract_frame(&mut buf), Ok(Some(payload)));
        assert!(buf.is_empty());
    }

    #[test]
    fn nan_bit_patterns_survive() {
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let req = Request::EdgeDelta {
            graph_id: 7,
            symmetric: true,
            deltas: vec![WireEdge {
                src: 1,
                dst: 2,
                weight: weird,
            }],
        };
        let Request::EdgeDelta { deltas, .. } = Request::decode(&req.encode()).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(deltas[0].weight.to_bits(), weird.to_bits());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Request::Ping.encode();
        bytes.push(0);
        assert_eq!(Request::decode(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn hostile_length_prefix_cannot_overallocate() {
        // SolveLinBp with a seeds length prefix of u64::MAX but no body.
        let mut w = WireWriter::new();
        w.u8(2);
        w.u64(0); // graph_id
        LinBpParams {
            echo: true,
            k: 2,
            h_residual: vec![0.0; 4],
            max_iter: 1,
            tol: 0.0,
            norm: WireNorm::MaxAbs,
            damping: 0.0,
            divergence_guard: 1e12,
        }
        .encode(&mut w);
        w.u64(u64::MAX); // hostile seed count
        assert_eq!(Request::decode(&w.into_bytes()), Err(WireError::Truncated));
    }
}

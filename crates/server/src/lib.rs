#![warn(missing_docs)]

//! # lsbp-server — propagation as a service
//!
//! Serves the [`lsbp`] propagation stack (LinBP, LinBP\*, RWR) over the
//! length-prefixed binary protocol defined in [`lsbp_net`], on plain
//! `std::net` TCP — no async runtime.
//!
//! The crate splits into
//!
//! * [`mod@core`] — the transport-independent engine: graph registry
//!   (operator layout built **once** at registration), admission
//!   coalescing (concurrent queries against the same graph/parameters are
//!   stacked into one batched solve, bitwise identical to per-query
//!   solves), and a belief cache that edge deltas **patch** rather than
//!   invalidate;
//! * [`tcp`] — a small poll(2)-based event loop (thread-per-connection on
//!   non-unix) feeding decoded requests into the core. One outstanding
//!   request per connection; coalescing happens *across* connections.

pub mod core;
pub mod tcp;

pub use crate::core::{
    DegradationPolicy, Responder, ServerConfig, ServerCore, MAX_CLASSES, MAX_ITER_CAP, MAX_NODES,
};
pub use crate::tcp::serve;

//! The `lsbp-server` binary: binds a TCP listener and serves the
//! propagation protocol until a client sends `Shutdown`.
//!
//! ```text
//! lsbp-server [--addr HOST:PORT] [--coalesce-window-ms N] [--max-batch N]
//!             [--max-pending N] [--cache-capacity N]
//!             [--idle-timeout-ms N] [--write-stall-timeout-ms N]
//!             [--max-write-buf BYTES] [--retry-after-hint-ms N]
//!             [--degradation off|stale|clamp:N]
//!             [--spill-dir PATH] [--memory-budget BYTES[K|M|G|T]]
//! ```
//!
//! With `--spill-dir`, registered graphs are written to on-disk shard
//! stores under that directory and served out-of-core through the
//! budgeted buffer pool; `--memory-budget` caps the pool's resident
//! bytes (same grammar as `LSBP_MEMORY_BUDGET`, which it overrides).
//!
//! Prints `listening on <addr>` (with the resolved port) to stdout once
//! ready — scripts wait for that line.

use lsbp_server::{serve, DegradationPolicy, ServerConfig, ServerCore};
use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: lsbp-server [--addr HOST:PORT] [--coalesce-window-ms N] \
         [--max-batch N] [--max-pending N] [--cache-capacity N] \
         [--idle-timeout-ms N] [--write-stall-timeout-ms N] \
         [--max-write-buf BYTES] [--retry-after-hint-ms N] \
         [--degradation off|stale|clamp:N] \
         [--spill-dir PATH] [--memory-budget BYTES[K|M|G|T]]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut addr = String::from("127.0.0.1:7461");
    let mut config = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--coalesce-window-ms" => {
                config.coalesce_window =
                    Duration::from_millis(parse(&value("--coalesce-window-ms")))
            }
            "--max-batch" => config.max_batch = parse(&value("--max-batch")) as usize,
            "--max-pending" => config.max_pending = parse(&value("--max-pending")) as usize,
            "--cache-capacity" => {
                config.cache_capacity = parse(&value("--cache-capacity")) as usize
            }
            "--idle-timeout-ms" => {
                config.idle_timeout = Duration::from_millis(parse(&value("--idle-timeout-ms")))
            }
            "--write-stall-timeout-ms" => {
                config.write_stall_timeout =
                    Duration::from_millis(parse(&value("--write-stall-timeout-ms")))
            }
            "--max-write-buf" => config.max_write_buf = parse(&value("--max-write-buf")) as usize,
            "--retry-after-hint-ms" => {
                config.retry_after_hint =
                    Duration::from_millis(parse(&value("--retry-after-hint-ms")))
            }
            "--degradation" => {
                config.degradation = match value("--degradation").as_str() {
                    "off" => DegradationPolicy::Off,
                    "stale" => DegradationPolicy::StaleCache,
                    other => match other.strip_prefix("clamp:") {
                        Some(n) => DegradationPolicy::ClampIter(parse(n) as usize),
                        None => {
                            eprintln!("--degradation expects off|stale|clamp:N, got {other:?}");
                            usage();
                        }
                    },
                }
            }
            "--spill-dir" => {
                config.spill_dir = Some(std::path::PathBuf::from(value("--spill-dir")))
            }
            "--memory-budget" => {
                let raw = value("--memory-budget");
                match lsbp_linalg::parse_byte_size(&raw) {
                    Some(bytes) if bytes > 0 => {
                        config.parallelism = config.parallelism.with_memory_budget(bytes)
                    }
                    _ => {
                        eprintln!(
                            "--memory-budget expects a positive byte count \
                             (optionally suffixed K/M/G/T), got {raw:?}"
                        );
                        usage();
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    if config.max_batch == 0 || config.max_pending == 0 {
        eprintln!("--max-batch and --max-pending must be positive");
        return ExitCode::from(2);
    }

    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("failed to bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let local = listener
        .local_addr()
        .expect("bound listener has an address");
    println!("listening on {local}");

    let core = ServerCore::new(config);
    match serve(listener, &core) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse(s: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("expected a non-negative integer, got {s:?}");
        usage()
    })
}

//! The transport-independent serving core: graph registry, admission
//! coalescing, belief cache, and the solver thread.
//!
//! [`ServerCore`] accepts decoded [`Request`]s through [`ServerCore::submit`]
//! with a callback responder, so the same engine serves the TCP event loop
//! (`crate::tcp`), in-process tests, and the benchmark harness without a
//! socket in sight.
//!
//! ## Admission coalescing
//!
//! Solve requests do not run one by one. Each request is validated, checked
//! against the belief cache, and then parked in an **admission queue** keyed
//! by everything that must match for two queries to share a stacked solve:
//! graph id, graph version, method (LinBP/LinBP\*/RWR), and the canonical
//! wire bytes of the solve parameters. A single solver thread drains a
//! queue when its **coalesce window** (measured from the first parked
//! query) expires or the queue reaches **max batch**, and runs the whole
//! stack through one [`lsbp::batch`] solve — one SpMM sweep per iteration
//! for the entire batch, with per-query convergence masks keeping every
//! answer **bitwise identical** to the per-query library solve.
//!
//! Backpressure: a queue holding `max_pending` queries rejects further
//! admissions with [`ErrorCode::Overloaded`] instead of buffering without
//! bound.
//!
//! ## Belief cache, patched on edge deltas
//!
//! Finished solves land in a bounded cache keyed by (graph id, graph
//! version, method + params bytes, seed bytes). An [`Request::EdgeDelta`]
//! bumps the graph version and — instead of invalidating — **patches**
//! every cached LinBP entry to the new version: the synthetic seed
//! `Ê_Δ = (ΔA)·B̂·Ĥ − (ΔD)·B̂·Ĥ²` ([`lsbp::edge_delta::linbp_edge_delta_seed`])
//! is solved for all entries of a parameter group in one
//! [`lsbp::batch::linbp_update_batch_on`] pass. Cached RWR scores have no
//! linear patch and are invalidated. Patched beliefs are bitwise
//! reproducible from the same library calls but are *not* bitwise equal to
//! a from-scratch solve on the new graph — the deliberately-relaxed
//! determinism boundary recorded in the ROADMAP.

use lsbp::prelude::*;
use lsbp::{edge_delta::linbp_edge_delta_seed, linbp::LinBpError, rwr::RwrError};
use lsbp_linalg::Mat;
use lsbp_net::{
    BeliefsPayload, ErrorCode, HealthInfo, LinBpParams, Request, Response, RwrParams, ServedVia,
    ServerStats, WireNorm, WireSeed, WireWriter,
};
use lsbp_sparse::{CooMatrix, CsrMatrix, PagedCsr, PagerStats};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

/// Upper bound on `n_nodes` at registration — bounds the row-pointer
/// allocation a hostile registration can force (2⁲⁸ nodes ≈ 2 GiB of
/// row pointers) far below the CSR's own `u32` dimension cap.
pub const MAX_NODES: u64 = 1 << 28;

/// Upper bound on classes per query.
pub const MAX_CLASSES: u32 = 1024;

/// Upper bound on solve iterations a client may request.
pub const MAX_ITER_CAP: u64 = 1_000_000;

/// What the server does with a solve it would otherwise reject
/// `Overloaded` — the graceful-degradation policy. Off by default: the
/// strict bitwise-determinism contract holds unless an operator opts in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DegradationPolicy {
    /// Reject with `Overloaded` (plus a `retry_after_ms` hint).
    #[default]
    Off,
    /// Serve the query from a cache entry computed against an **older
    /// graph version** when one matches (same params + seeds), marked
    /// [`ServedVia::Stale`]. Under this policy, edge deltas *retain*
    /// unpatchable cache entries at their old version instead of
    /// dropping them, so stale answers stay available under load.
    StaleCache,
    /// Once the admission backlog crosses half of `max_pending`, admit
    /// further solves with `max_iter` clamped to this value — cheaper,
    /// still bitwise equal to a library solve *with the clamped budget*.
    /// A completely full queue still rejects `Overloaded`.
    ClampIter(usize),
}

/// Serving knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// How long the solver waits after the *first* query parks in an
    /// admission queue before draining it — the window in which
    /// concurrently arriving queries coalesce.
    pub coalesce_window: Duration,
    /// Largest stacked solve; a fuller queue drains immediately and the
    /// remainder re-arms the window.
    pub max_batch: usize,
    /// Per-queue admission bound; beyond it clients get `Overloaded`.
    pub max_pending: usize,
    /// Belief-cache entry bound (oldest-in evicted first).
    pub cache_capacity: usize,
    /// Execution config for solves (threads follow `LSBP_THREADS`; the
    /// shard knob picks the operator layout **once at registration**).
    pub parallelism: ParallelismConfig,
    /// Drop a connection with no in-flight work and no traffic for this
    /// long (also reaps peers parked mid-frame forever).
    pub idle_timeout: Duration,
    /// Drop a connection whose pending response bytes make no write
    /// progress for this long (a reader that stopped reading).
    pub write_stall_timeout: Duration,
    /// Upper bound on buffered response bytes per connection; a pipelining
    /// client that stops reading past this is dropped, not buffered.
    pub max_write_buf: usize,
    /// The `retry_after_ms` hint attached to `Overloaded` and
    /// `DeadlineExceeded` rejections.
    pub retry_after_hint: Duration,
    /// What to do under sustained overload. Default [`DegradationPolicy::Off`].
    pub degradation: DegradationPolicy,
    /// Fault-injection hook for the panic-isolation boundary: a batched
    /// solve against this graph id panics deliberately. Test-only in
    /// spirit, but kept an ordinary config knob so chaos tests exercise
    /// exactly the production `catch_unwind` path.
    pub panic_on_graph: Option<u64>,
    /// When set, every registered graph is spilled to an on-disk shard
    /// store under this directory and served through the paged operator
    /// (buffer-pool budget from `parallelism.memory_budget()`). A spill
    /// failure falls back to the resident operator with a warning —
    /// registration never fails on pager trouble.
    pub spill_dir: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            coalesce_window: Duration::from_millis(3),
            max_batch: 32,
            max_pending: 1024,
            cache_capacity: 4096,
            parallelism: ParallelismConfig::from_env(),
            idle_timeout: Duration::from_secs(60),
            write_stall_timeout: Duration::from_secs(10),
            max_write_buf: 64 * 1024 * 1024,
            retry_after_hint: Duration::from_millis(25),
            degradation: DegradationPolicy::Off,
            panic_on_graph: None,
            spill_dir: None,
        }
    }
}

/// Callback a response is delivered through (exactly once per request).
pub type Responder = Box<dyn FnOnce(Response) + Send + 'static>;

/// A registered graph at one version. The operator layout (monolithic or
/// sharded) is built **once** here — solves reuse it, avoiding the
/// per-call O(nnz) re-shard of the config-knob route.
struct GraphEntry {
    version: u64,
    csr: CsrMatrix,
    sharded: Option<ShardedCsr>,
    /// Set when the server spills registrations to disk: the same graph
    /// behind the budgeted buffer pool. Solves run out-of-core through
    /// it (bitwise equal to the resident path); the resident `csr` stays
    /// for edge-delta rebuilds and validation.
    paged: Option<PagedCsr>,
}

/// Distinguishes spill files across builds of the same (graph, version):
/// rejected duplicate registrations and racing delta rebuilds each write
/// their own file, so a losing build's `Drop` can only ever delete its
/// own spill — never the live entry's.
static SPILL_NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl GraphEntry {
    fn build(csr: CsrMatrix, version: u64, graph_id: u64, config: &ServerConfig) -> Self {
        let cfg = &config.parallelism;
        let paged = config.spill_dir.as_ref().and_then(|dir| {
            let nonce = SPILL_NONCE.fetch_add(1, Ordering::Relaxed);
            let path = dir.join(format!("graph-{graph_id:016x}-v{version}-{nonce}.lsbp"));
            std::fs::create_dir_all(dir)
                .map_err(lsbp::ShardFileError::Io)
                .and_then(|()| lsbp::spill_paged(&csr, &path, cfg))
                .map_err(|e| {
                    eprintln!(
                        "lsbp-server: failed to spill graph {graph_id} v{version} to \
                         {path:?}: {e}; serving resident"
                    );
                })
                .ok()
        });
        let sharded =
            (paged.is_none() && cfg.shards() > 1).then(|| ShardedCsr::from_csr(&csr, cfg.shards()));
        Self {
            version,
            csr,
            sharded,
            paged,
        }
    }

    fn operator(&self) -> &dyn PropagationOperator {
        if let Some(p) = &self.paged {
            return p;
        }
        match &self.sharded {
            Some(s) => s,
            None => &self.csr,
        }
    }

    fn pager_stats(&self) -> PagerStats {
        self.paged.as_ref().map(|p| p.stats()).unwrap_or_default()
    }
}

impl Drop for GraphEntry {
    fn drop(&mut self) {
        // Spill files are per (graph, version) — once the entry is gone
        // nothing can reopen them, so reclaim the disk.
        if let Some(p) = self.paged.take() {
            let path = p.path().to_path_buf();
            drop(p);
            let _ = std::fs::remove_file(path);
        }
    }
}

/// What kind of solve a parked query wants (params already validated).
enum JobKind {
    LinBp {
        echo: bool,
        h: Mat,
        opts: LinBpOptions,
    },
    Rwr {
        opts: RwrOptions,
    },
}

/// A validated query parked in an admission queue.
struct SolveJob {
    graph: Arc<GraphEntry>,
    kind: JobKind,
    seeds: ExplicitBeliefs,
    cache_key: CacheKey,
    responder: Responder,
    /// Absolute budget; a job still parked past this is answered
    /// `DeadlineExceeded` at drain time without burning a solve slot.
    deadline: Option<Instant>,
}

/// Cache/admission key: (graph id, graph version, method+params bytes ++
/// seed bytes). Full byte material — no hash-collision hazard.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
struct CacheKey {
    graph_id: u64,
    version: u64,
    tail: Vec<u8>,
}

/// Admission-queue key: the cache key minus the seed bytes (queries with
/// different seeds coalesce; different params must not).
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
struct GroupKey {
    graph_id: u64,
    version: u64,
    params: Vec<u8>,
}

/// How a cached entry may be refreshed across graph versions.
enum PatchInfo {
    LinBp {
        echo: bool,
        h: Mat,
        opts: LinBpOptions,
    },
    /// RWR has no linear patch — invalidated on edge deltas.
    None,
}

struct CacheEntry {
    beliefs: Mat,
    k: u32,
    converged: bool,
    diverged: bool,
    iterations: u64,
    final_delta: f64,
    patched: bool,
    patch: PatchInfo,
}

impl CacheEntry {
    fn payload(&self, served: ServedVia) -> BeliefsPayload {
        BeliefsPayload {
            n: self.beliefs.rows() as u64,
            k: self.k,
            beliefs: self.beliefs.as_slice().to_vec(),
            converged: self.converged,
            diverged: self.diverged,
            iterations: self.iterations,
            final_delta: self.final_delta,
            served,
        }
    }
}

#[derive(Default)]
struct Cache {
    entries: HashMap<CacheKey, CacheEntry>,
    /// Insertion order for eviction; stale keys are skipped lazily.
    order: VecDeque<CacheKey>,
}

impl Cache {
    fn insert(&mut self, key: CacheKey, entry: CacheEntry, capacity: usize) {
        while self.entries.len() >= capacity.max(1) {
            match self.order.pop_front() {
                Some(old) => {
                    self.entries.remove(&old);
                }
                None => break,
            }
        }
        self.order.push_back(key.clone());
        self.entries.insert(key, entry);
    }
}

/// One admission queue: parked queries plus the window deadline armed by
/// the first of them.
struct PendingGroup {
    jobs: Vec<SolveJob>,
    deadline: Instant,
}

#[derive(Default)]
struct Admission {
    groups: HashMap<GroupKey, PendingGroup>,
}

#[derive(Default)]
struct Counters {
    queries_served: u64,
    cache_hits: u64,
    coalesced_batches: u64,
    coalesced_queries: u64,
    largest_batch: u64,
    spmm_passes: u64,
    spmm_passes_sequential_equiv: u64,
    patched_entries: u64,
    invalidated_entries: u64,
    rejected_overloaded: u64,
    rejected_deadline: u64,
    rejected_invalid: u64,
    panics_caught: u64,
    degraded_stale: u64,
    degraded_clamped: u64,
    /// LinBP rows recomputed by served solves (active-frontier
    /// execution; equals rows × sweeps when the frontier is off).
    frontier_rows_active: u64,
    /// LinBP rows skipped by served solves because their inputs were
    /// bitwise unchanged since the previous sweep.
    frontier_rows_skipped: u64,
    /// Pager activity of graph entries already replaced by edge deltas
    /// — added at replacement time so the served totals stay monotone
    /// as spilled versions retire.
    pager_retired: PagerStats,
}

struct Shared {
    config: ServerConfig,
    registry: RwLock<HashMap<u64, Arc<GraphEntry>>>,
    /// Serializes graph mutations (register / edge delta) so a delta's
    /// read-rebuild-publish sequence is atomic: without it two racing
    /// deltas both rebuild from the same old version and one update is
    /// silently lost. Held only by the rare control-plane requests —
    /// solves never touch it. Lock order: `mutations` → `registry` →
    /// `counters`.
    mutations: Mutex<()>,
    cache: Mutex<Cache>,
    admission: Mutex<Admission>,
    wakeup: Condvar,
    counters: Mutex<Counters>,
    stopping: AtomicBool,
    started: Instant,
}

/// The serving engine. See the module docs for the data flow.
pub struct ServerCore {
    shared: Arc<Shared>,
    solver: Option<thread::JoinHandle<()>>,
}

impl ServerCore {
    /// Starts a core (and its solver thread) with the given knobs.
    pub fn new(config: ServerConfig) -> Self {
        let shared = Arc::new(Shared {
            config,
            registry: RwLock::new(HashMap::new()),
            mutations: Mutex::new(()),
            cache: Mutex::new(Cache::default()),
            admission: Mutex::new(Admission::default()),
            wakeup: Condvar::new(),
            counters: Mutex::new(Counters::default()),
            stopping: AtomicBool::new(false),
            started: Instant::now(),
        });
        let solver_shared = Arc::clone(&shared);
        let solver = thread::Builder::new()
            .name("lsbp-solver".into())
            .spawn(move || solver_loop(&solver_shared))
            .expect("spawn solver thread");
        Self {
            shared,
            solver: Some(solver),
        }
    }

    /// Handles one request with no deadline; the response is delivered
    /// through `responder` (inline for registry/cache/metadata operations,
    /// from the solver thread for solves that miss the cache).
    pub fn submit(&self, request: Request, responder: Responder) {
        self.submit_at(request, None, responder);
    }

    /// [`ServerCore::submit`] with an absolute deadline. Solves whose
    /// budget has already expired (or expires while parked in a
    /// coalescing group) are answered [`ErrorCode::DeadlineExceeded`]
    /// without consuming a solve slot; metadata requests ignore the
    /// deadline (they answer inline anyway).
    ///
    /// Every rejection delivered through the responder — wherever it is
    /// produced — bumps the matching typed counter in [`ServerStats`].
    pub fn submit_at(&self, request: Request, deadline: Option<Instant>, responder: Responder) {
        let counters = Arc::clone(&self.shared);
        let responder: Responder = Box::new(move |resp: Response| {
            if let Response::Error { code, .. } = &resp {
                let mut c = counters.counters.lock().unwrap();
                match code {
                    ErrorCode::Overloaded => c.rejected_overloaded += 1,
                    ErrorCode::DeadlineExceeded => c.rejected_deadline += 1,
                    ErrorCode::BadRequest
                    | ErrorCode::UnknownGraph
                    | ErrorCode::GraphAlreadyRegistered => c.rejected_invalid += 1,
                    ErrorCode::Internal => {}
                }
            }
            responder(resp)
        });
        match request {
            Request::Ping => responder(Response::Pong {
                protocol_version: lsbp_net::PROTOCOL_VERSION,
            }),
            Request::Stats => responder(Response::Stats(self.stats())),
            Request::Health => responder(Response::Health(self.health())),
            Request::Shutdown => {
                self.shared.stopping.store(true, Ordering::SeqCst);
                self.shared.wakeup.notify_all();
                responder(Response::ShuttingDown);
            }
            Request::RegisterGraph {
                graph_id,
                n_nodes,
                symmetric,
                edges,
            } => responder(self.register_graph(graph_id, n_nodes, symmetric, &edges)),
            Request::EdgeDelta {
                graph_id,
                symmetric,
                deltas,
            } => responder(self.apply_edge_delta(graph_id, symmetric, &deltas)),
            Request::SolveLinBp {
                graph_id,
                params,
                seeds,
            } => self.admit_linbp(graph_id, params, seeds, deadline, responder),
            Request::SolveRwr {
                graph_id,
                params,
                seeds,
            } => self.admit_rwr(graph_id, params, seeds, deadline, responder),
        }
    }

    /// Cheap liveness snapshot (answered inline, never queued).
    pub fn health(&self) -> HealthInfo {
        let queue_depth: u64 = {
            let admission = self.shared.admission.lock().unwrap();
            admission.groups.values().map(|g| g.jobs.len() as u64).sum()
        };
        let pager = self.pager_totals();
        let (frontier_rows_active, frontier_rows_skipped) = {
            let c = self.shared.counters.lock().unwrap();
            (c.frontier_rows_active, c.frontier_rows_skipped)
        };
        HealthInfo {
            protocol_version: lsbp_net::PROTOCOL_VERSION,
            graphs: self.shared.registry.read().unwrap().len() as u64,
            queue_depth,
            cached_entries: self.shared.cache.lock().unwrap().entries.len() as u64,
            uptime_ms: self.shared.started.elapsed().as_millis() as u64,
            spill_enabled: self.shared.config.spill_dir.is_some(),
            pager_hits: pager.hits,
            pager_misses: pager.misses,
            pager_evictions: pager.evictions,
            pager_prefetches: pager.prefetches,
            frontier_rows_active,
            frontier_rows_skipped,
        }
    }

    /// Pager activity summed over every live spilled graph plus the
    /// retired totals banked when versions were replaced. The registry
    /// lock is held across the counter read (same `registry` →
    /// `counters` order as the banking in [`Self::apply_edge_delta`]),
    /// so a retiring version is counted exactly once: either still
    /// registered or already banked, never both.
    fn pager_totals(&self) -> PagerStats {
        let registry = self.shared.registry.read().unwrap();
        let mut total = self.shared.counters.lock().unwrap().pager_retired;
        for entry in registry.values() {
            let s = entry.pager_stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.prefetches += s.prefetches;
        }
        total
    }

    /// The knobs this core was started with.
    pub fn config(&self) -> &ServerConfig {
        &self.shared.config
    }

    /// [`ServerCore::submit`] with an in-place wait — the convenience
    /// entry point for tests and benchmarks.
    pub fn handle_blocking(&self, request: Request) -> Response {
        let (tx, rx) = mpsc::channel();
        self.submit(request, Box::new(move |r| drop(tx.send(r))));
        rx.recv().expect("responder always fires")
    }

    /// `true` once a [`Request::Shutdown`] was accepted (or
    /// [`ServerCore::stop`] called).
    pub fn is_stopping(&self) -> bool {
        self.shared.stopping.load(Ordering::SeqCst)
    }

    /// Asks the solver thread to drain and exit.
    pub fn stop(&self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        self.shared.wakeup.notify_all();
    }

    /// Current counters.
    pub fn stats(&self) -> ServerStats {
        let pager = self.pager_totals();
        // Registry and cache are read *before* taking the counters lock:
        // version retirement nests `registry` → `counters`, so grabbing
        // them the other way round here would risk a deadlock.
        let graphs = self.shared.registry.read().unwrap().len() as u64;
        let cached_entries = self.shared.cache.lock().unwrap().entries.len() as u64;
        let c = self.shared.counters.lock().unwrap();
        ServerStats {
            graphs,
            cached_entries,
            queries_served: c.queries_served,
            cache_hits: c.cache_hits,
            coalesced_batches: c.coalesced_batches,
            coalesced_queries: c.coalesced_queries,
            largest_batch: c.largest_batch,
            spmm_passes: c.spmm_passes,
            spmm_passes_sequential_equiv: c.spmm_passes_sequential_equiv,
            patched_entries: c.patched_entries,
            invalidated_entries: c.invalidated_entries,
            rejected_overloaded: c.rejected_overloaded,
            rejected_deadline: c.rejected_deadline,
            rejected_invalid: c.rejected_invalid,
            panics_caught: c.panics_caught,
            degraded_stale: c.degraded_stale,
            degraded_clamped: c.degraded_clamped,
            pager_hits: pager.hits,
            pager_misses: pager.misses,
            pager_evictions: pager.evictions,
            pager_prefetches: pager.prefetches,
            frontier_rows_active: c.frontier_rows_active,
            frontier_rows_skipped: c.frontier_rows_skipped,
        }
    }

    fn register_graph(
        &self,
        graph_id: u64,
        n_nodes: u64,
        symmetric: bool,
        edges: &[lsbp_net::WireEdge],
    ) -> Response {
        if n_nodes == 0 || n_nodes > MAX_NODES {
            return bad_request(format!("n_nodes must be in 1..={MAX_NODES}, got {n_nodes}"));
        }
        // Reject duplicates *before* GraphEntry::build runs: the build
        // spills to disk, and doing it first for an id that is already
        // live would waste the work (and, before spill paths carried a
        // nonce, truncated the live entry's file).
        let _mutation = self.shared.mutations.lock().unwrap();
        if self.shared.registry.read().unwrap().contains_key(&graph_id) {
            return Response::Error {
                code: ErrorCode::GraphAlreadyRegistered,
                message: format!("graph {graph_id} is already registered"),
                retry_after_ms: None,
            };
        }
        let n = n_nodes as usize;
        let mut coo = CooMatrix::new(n, n);
        for e in edges {
            if e.src >= n_nodes || e.dst >= n_nodes {
                return bad_request(format!(
                    "edge ({}, {}) out of range for {n_nodes} nodes",
                    e.src, e.dst
                ));
            }
            if !e.weight.is_finite() {
                return bad_request(format!("edge ({}, {}) has non-finite weight", e.src, e.dst));
            }
            coo.push(e.src as usize, e.dst as usize, e.weight);
            if symmetric && e.src != e.dst {
                coo.push(e.dst as usize, e.src as usize, e.weight);
            }
        }
        let csr = match coo.try_to_csr() {
            Ok(m) => m,
            Err(e) => return bad_request(e.to_string()),
        };
        let nnz = csr.nnz() as u64;
        let entry = Arc::new(GraphEntry::build(csr, 1, graph_id, &self.shared.config));
        let mut registry = self.shared.registry.write().unwrap();
        if registry.contains_key(&graph_id) {
            return Response::Error {
                code: ErrorCode::GraphAlreadyRegistered,
                message: format!("graph {graph_id} is already registered"),
                retry_after_ms: None,
            };
        }
        registry.insert(graph_id, entry);
        Response::Registered {
            graph_id,
            version: 1,
            n_nodes,
            nnz,
        }
    }

    /// Applies additive edge deltas: bumps the graph version, rebuilds the
    /// operator layout once, patches cached LinBP beliefs forward
    /// (batched, one pass per parameter group) and invalidates cached RWR
    /// scores.
    fn apply_edge_delta(
        &self,
        graph_id: u64,
        symmetric: bool,
        deltas: &[lsbp_net::WireEdge],
    ) -> Response {
        // Serialize the read-rebuild-publish sequence per core: two
        // racing deltas would otherwise both rebuild from the same old
        // version and one of the updates would be silently lost.
        let _mutation = self.shared.mutations.lock().unwrap();
        let old = match self.shared.registry.read().unwrap().get(&graph_id) {
            Some(e) => Arc::clone(e),
            None => return unknown_graph(graph_id),
        };
        let mut list: Vec<(usize, usize, f64)> = Vec::with_capacity(deltas.len() * 2);
        for d in deltas {
            if !d.weight.is_finite() {
                return bad_request(format!(
                    "delta ({}, {}) has non-finite weight",
                    d.src, d.dst
                ));
            }
            let (s, t) = (d.src as usize, d.dst as usize);
            if d.src >= old.csr.n_rows() as u64 || d.dst >= old.csr.n_rows() as u64 {
                return bad_request(format!("delta ({}, {}) out of range", d.src, d.dst));
            }
            list.push((s, t, d.weight));
            if symmetric && s != t {
                list.push((t, s, d.weight));
            }
        }
        let new_csr = match old.csr.try_with_edge_deltas(&list) {
            Ok(m) => m,
            Err(e) => return bad_request(e.to_string()),
        };
        let new_version = old.version + 1;
        let new_entry = Arc::new(GraphEntry::build(
            new_csr,
            new_version,
            graph_id,
            &self.shared.config,
        ));

        // Publish the new version first: queries admitted from here on
        // solve (and cache) against it. The outgoing version's pager
        // activity banks into the retired counters in the same
        // registry-write critical section that unregisters it, so a
        // concurrent Health/Stats sum never sees the old entry both
        // banked and still registered (or neither) — totals stay
        // monotone.
        {
            let mut registry = self.shared.registry.write().unwrap();
            let old_pager = old.pager_stats();
            let mut c = self.shared.counters.lock().unwrap();
            c.pager_retired.hits += old_pager.hits;
            c.pager_retired.misses += old_pager.misses;
            c.pager_retired.evictions += old_pager.evictions;
            c.pager_retired.prefetches += old_pager.prefetches;
            drop(c);
            registry.insert(graph_id, Arc::clone(&new_entry));
        }

        let (patched, invalidated) = self.patch_cache(graph_id, &old, &new_entry, &list);
        {
            let mut c = self.shared.counters.lock().unwrap();
            c.patched_entries += patched;
            c.invalidated_entries += invalidated;
        }
        Response::DeltaApplied {
            graph_id,
            version: new_version,
            patched,
            invalidated,
        }
    }

    /// Moves this graph's cache entries from the old version to the new:
    /// LinBP entries are patched via the edge-delta seed + batched
    /// incremental update; RWR entries are dropped. Returns
    /// `(patched, invalidated)`.
    fn patch_cache(
        &self,
        graph_id: u64,
        old: &GraphEntry,
        new_entry: &GraphEntry,
        deltas: &[(usize, usize, f64)],
    ) -> (u64, u64) {
        let mut cache = self.shared.cache.lock().unwrap();
        let stale: Vec<CacheKey> = cache
            .entries
            .keys()
            .filter(|k| k.graph_id == graph_id && k.version == old.version)
            .cloned()
            .collect();
        let mut patched = 0u64;
        let mut invalidated = 0u64;

        // Under the StaleCache degradation policy, entries that cannot be
        // patched forward are *retained* at their old version (still
        // counted invalidated) — they are only reachable through the
        // stale-serving overload path, never a normal cache hit.
        let keep_stale = self.shared.config.degradation == DegradationPolicy::StaleCache;
        let cap = self.shared.config.cache_capacity;

        // Group patchable entries by identical solve parameters so each
        // group refreshes in ONE batched update pass.
        let mut groups: HashMap<Vec<u8>, Vec<(CacheKey, CacheEntry)>> = HashMap::new();
        for key in stale {
            let entry = cache.entries.remove(&key).unwrap();
            cache.order.retain(|k| *k != key);
            match &entry.patch {
                PatchInfo::None => {
                    invalidated += 1;
                    if keep_stale {
                        cache.insert(key, entry, cap);
                    }
                }
                PatchInfo::LinBp { .. } => {
                    // The params live in the key tail (method + params
                    // bytes precede the seed bytes) — but grouping by the
                    // whole tail would make every entry its own group, so
                    // group by the stored patch parameters' wire bytes.
                    let group_bytes = match &entry.patch {
                        PatchInfo::LinBp { echo, h, opts } => linbp_params_bytes(*echo, h, opts),
                        PatchInfo::None => unreachable!(),
                    };
                    groups.entry(group_bytes).or_default().push((key, entry));
                }
            }
        }

        for (_, group) in groups {
            let (echo, h, opts) = match &group[0].1.patch {
                PatchInfo::LinBp { echo, h, opts } => (*echo, h.clone(), *opts),
                PatchInfo::None => unreachable!(),
            };
            // One synthetic seed per cached result (each depends on that
            // entry's beliefs), solved together in one stacked pass.
            let mut prev: Vec<BeliefMatrix> = Vec::with_capacity(group.len());
            let mut seeds: Vec<ExplicitBeliefs> = Vec::with_capacity(group.len());
            let mut ok = true;
            for (_, entry) in &group {
                let beliefs = BeliefMatrix::from_mat(entry.beliefs.clone());
                match linbp_edge_delta_seed(&old.csr, deltas, &beliefs, &h, echo) {
                    Ok(seed) => {
                        seeds.push(seed);
                        prev.push(beliefs);
                    }
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                invalidated += group.len() as u64;
                if keep_stale {
                    for (key, entry) in group {
                        cache.insert(key, entry, cap);
                    }
                }
                continue;
            }
            let prev_refs: Vec<&BeliefMatrix> = prev.iter().collect();
            let runs = match linbp_update_batch_on(
                new_entry.operator(),
                &prev_refs,
                &seeds,
                &h,
                &opts,
                echo,
            ) {
                Ok(r) => r,
                Err(_) => {
                    invalidated += group.len() as u64;
                    if keep_stale {
                        for (key, entry) in group {
                            cache.insert(key, entry, cap);
                        }
                    }
                    continue;
                }
            };
            for ((key, entry), run) in group.into_iter().zip(runs) {
                if run.diverged {
                    invalidated += 1;
                    if keep_stale {
                        cache.insert(key, entry, cap);
                    }
                    continue;
                }
                let new_key = CacheKey {
                    version: new_entry.version,
                    ..key
                };
                let refreshed = CacheEntry {
                    beliefs: run.beliefs.into_mat(),
                    converged: run.converged,
                    diverged: run.diverged,
                    iterations: run.iterations as u64,
                    final_delta: run.final_delta,
                    patched: true,
                    ..entry
                };
                patched += 1;
                cache.insert(new_key, refreshed, cap);
            }
        }
        (patched, invalidated)
    }

    fn lookup_graph(&self, graph_id: u64) -> Option<Arc<GraphEntry>> {
        self.shared.registry.read().unwrap().get(&graph_id).cloned()
    }

    /// Validates a LinBP solve, then serves it from cache or parks it for
    /// coalescing.
    fn admit_linbp(
        &self,
        graph_id: u64,
        params: LinBpParams,
        seeds: Vec<WireSeed>,
        deadline: Option<Instant>,
        responder: Responder,
    ) {
        let graph = match self.lookup_graph(graph_id) {
            Some(g) => g,
            None => return responder(unknown_graph(graph_id)),
        };
        let (h, mut opts) = match validate_linbp_params(&params) {
            Ok(v) => v,
            Err(msg) => return responder(bad_request(msg)),
        };
        let explicit = match build_seeds(graph.csr.n_rows(), params.k as usize, &seeds) {
            Ok(e) => e,
            Err(msg) => return responder(bad_request(msg)),
        };
        // ClampIter degradation: past the high-water mark, shrink the
        // iteration budget. The clamped opts feed the params bytes below,
        // so clamped queries coalesce and cache among themselves.
        if let DegradationPolicy::ClampIter(cap) = self.shared.config.degradation {
            if opts.max_iter > cap.max(1) && self.backlog() >= self.shared.config.max_pending / 2 {
                opts.max_iter = cap.max(1);
                self.shared.counters.lock().unwrap().degraded_clamped += 1;
            }
        }
        let kind = JobKind::LinBp {
            echo: params.echo,
            h,
            opts,
        };
        let params_bytes = linbp_params_bytes(params.echo, kind_h(&kind), kind_opts(&kind));
        self.admit(
            graph,
            graph_id,
            kind,
            explicit,
            params_bytes,
            &seeds,
            deadline,
            responder,
        );
    }

    /// Total queries parked across all admission queues.
    fn backlog(&self) -> usize {
        let admission = self.shared.admission.lock().unwrap();
        admission.groups.values().map(|g| g.jobs.len()).sum()
    }

    /// Validates an RWR solve, then serves it from cache or parks it.
    fn admit_rwr(
        &self,
        graph_id: u64,
        params: RwrParams,
        seeds: Vec<WireSeed>,
        deadline: Option<Instant>,
        responder: Responder,
    ) {
        let graph = match self.lookup_graph(graph_id) {
            Some(g) => g,
            None => return responder(unknown_graph(graph_id)),
        };
        let opts = match validate_rwr_params(&params) {
            Ok(o) => o,
            Err(msg) => return responder(bad_request(msg)),
        };
        let explicit = match build_seeds(graph.csr.n_rows(), params.k as usize, &seeds) {
            Ok(e) => e,
            Err(msg) => return responder(bad_request(msg)),
        };
        // RWR needs every class seeded (the library rejects a whole batch
        // for one empty class — catch it per query at admission so one
        // hostile query cannot poison its co-batched neighbors).
        for c in 0..params.k as usize {
            let seeded = (0..explicit.n()).any(|v| explicit.row(v)[c] > 0.0);
            if !seeded {
                return responder(bad_request(format!("class {c} has no labeled node")));
            }
        }
        let params_bytes = rwr_params_bytes(&params);
        let kind = JobKind::Rwr { opts };
        self.admit(
            graph,
            graph_id,
            kind,
            explicit,
            params_bytes,
            &seeds,
            deadline,
            responder,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn admit(
        &self,
        graph: Arc<GraphEntry>,
        graph_id: u64,
        kind: JobKind,
        seeds: ExplicitBeliefs,
        params_bytes: Vec<u8>,
        wire_seeds: &[WireSeed],
        deadline: Option<Instant>,
        responder: Responder,
    ) {
        let mut tail = params_bytes.clone();
        tail.extend_from_slice(&seeds_bytes(wire_seeds));
        let cache_key = CacheKey {
            graph_id,
            version: graph.version,
            tail,
        };

        // Deadline check at admission: a budget that is already gone
        // gets its typed answer immediately.
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return responder(deadline_exceeded(self.shared.config.retry_after_hint));
        }

        // Cache first.
        {
            let cache = self.shared.cache.lock().unwrap();
            if let Some(entry) = cache.entries.get(&cache_key) {
                let served = if entry.patched {
                    ServedVia::CachePatched
                } else {
                    ServedVia::Cache
                };
                let payload = entry.payload(served);
                drop(cache);
                let mut c = self.shared.counters.lock().unwrap();
                c.queries_served += 1;
                c.cache_hits += 1;
                drop(c);
                return responder(Response::Beliefs(payload));
            }
        }

        let group_key = GroupKey {
            graph_id,
            version: graph.version,
            params: params_bytes,
        };
        let job = SolveJob {
            graph,
            kind,
            seeds,
            cache_key,
            responder,
            deadline,
        };
        let mut admission = self.shared.admission.lock().unwrap();
        let group = admission
            .groups
            .entry(group_key)
            .or_insert_with(|| PendingGroup {
                jobs: Vec::new(),
                deadline: Instant::now() + self.shared.config.coalesce_window,
            });
        if group.jobs.len() >= self.shared.config.max_pending {
            drop(admission);
            // StaleCache degradation: a matching answer for an older graph
            // version beats a rejection.
            if self.shared.config.degradation == DegradationPolicy::StaleCache {
                if let Some(payload) = self.stale_lookup(&job.cache_key) {
                    let mut c = self.shared.counters.lock().unwrap();
                    c.queries_served += 1;
                    c.degraded_stale += 1;
                    drop(c);
                    return (job.responder)(Response::Beliefs(payload));
                }
            }
            let hint = self.shared.config.retry_after_hint;
            return (job.responder)(Response::Error {
                code: ErrorCode::Overloaded,
                message: "admission queue full, retry later".into(),
                retry_after_ms: Some(hint.as_millis() as u64),
            });
        }
        group.jobs.push(job);
        drop(admission);
        self.shared.wakeup.notify_all();
    }

    /// Newest cache entry answering the same query (params + seeds)
    /// against any **older** version of the same graph.
    fn stale_lookup(&self, key: &CacheKey) -> Option<BeliefsPayload> {
        let cache = self.shared.cache.lock().unwrap();
        cache
            .entries
            .iter()
            .filter(|(k, _)| {
                k.graph_id == key.graph_id && k.version < key.version && k.tail == key.tail
            })
            .max_by_key(|(k, _)| k.version)
            .map(|(k, entry)| entry.payload(ServedVia::Stale { version: k.version }))
    }
}

impl Drop for ServerCore {
    fn drop(&mut self) {
        self.stop();
        if let Some(handle) = self.solver.take() {
            let _ = handle.join();
        }
    }
}

fn kind_h(kind: &JobKind) -> &Mat {
    match kind {
        JobKind::LinBp { h, .. } => h,
        JobKind::Rwr { .. } => unreachable!(),
    }
}

fn kind_opts(kind: &JobKind) -> &LinBpOptions {
    match kind {
        JobKind::LinBp { opts, .. } => opts,
        JobKind::Rwr { .. } => unreachable!(),
    }
}

fn bad_request(message: String) -> Response {
    Response::Error {
        code: ErrorCode::BadRequest,
        message,
        retry_after_ms: None,
    }
}

fn unknown_graph(graph_id: u64) -> Response {
    Response::Error {
        code: ErrorCode::UnknownGraph,
        message: format!("no graph registered under id {graph_id}"),
        retry_after_ms: None,
    }
}

fn deadline_exceeded(hint: Duration) -> Response {
    Response::Error {
        code: ErrorCode::DeadlineExceeded,
        message: "deadline expired before the solve could start".into(),
        retry_after_ms: Some(hint.as_millis() as u64),
    }
}

/// Canonical byte material for a LinBP admission/cache key: method tag,
/// echo, and the exact bit patterns of every solve parameter.
fn linbp_params_bytes(echo: bool, h: &Mat, opts: &LinBpOptions) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u8(if echo { 1 } else { 2 });
    w.u32(h.rows() as u32);
    w.f64s(h.as_slice());
    w.u64(opts.max_iter as u64);
    w.f64(opts.tol);
    w.u8(match opts.norm {
        ToleranceNorm::MaxAbs => 0,
        ToleranceNorm::L2 => 1,
    });
    w.f64(opts.damping);
    w.f64(opts.divergence_guard);
    w.into_bytes()
}

fn rwr_params_bytes(params: &RwrParams) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u8(3);
    w.u32(params.k);
    w.f64(params.restart);
    w.u64(params.max_iter);
    w.f64(params.tol);
    w.u8(match params.norm {
        WireNorm::MaxAbs => 0,
        WireNorm::L2 => 1,
    });
    w.into_bytes()
}

fn seeds_bytes(seeds: &[WireSeed]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u64(seeds.len() as u64);
    for s in seeds {
        w.u64(s.node);
        w.f64s(&s.residual);
    }
    w.into_bytes()
}

fn wire_norm(norm: WireNorm) -> ToleranceNorm {
    match norm {
        WireNorm::MaxAbs => ToleranceNorm::MaxAbs,
        WireNorm::L2 => ToleranceNorm::L2,
    }
}

fn validate_linbp_params(p: &LinBpParams) -> Result<(Mat, LinBpOptions), String> {
    let k = p.k as usize;
    if p.k < 2 || p.k > MAX_CLASSES {
        return Err(format!("k must be in 2..={MAX_CLASSES}, got {}", p.k));
    }
    if p.h_residual.len() != k * k {
        return Err(format!(
            "coupling matrix must have k² = {} entries, got {}",
            k * k,
            p.h_residual.len()
        ));
    }
    if p.h_residual.iter().any(|x| !x.is_finite()) {
        return Err("coupling matrix has non-finite entries".into());
    }
    if p.max_iter == 0 || p.max_iter > MAX_ITER_CAP {
        return Err(format!(
            "max_iter must be in 1..={MAX_ITER_CAP}, got {}",
            p.max_iter
        ));
    }
    if !(p.tol.is_finite() && p.tol >= 0.0) {
        return Err("tol must be finite and >= 0".into());
    }
    if !(p.damping.is_finite() && (0.0..1.0).contains(&p.damping)) {
        return Err("damping must be in [0, 1)".into());
    }
    if p.divergence_guard.is_nan() || p.divergence_guard <= 0.0 {
        return Err("divergence_guard must be positive".into());
    }
    let h = Mat::from_vec(k, k, p.h_residual.clone());
    let opts = LinBpOptions {
        max_iter: p.max_iter as usize,
        tol: p.tol,
        norm: wire_norm(p.norm),
        damping: p.damping,
        divergence_guard: p.divergence_guard,
        parallelism: ParallelismConfig::from_env(),
    };
    Ok((h, opts))
}

fn validate_rwr_params(p: &RwrParams) -> Result<RwrOptions, String> {
    if p.k < 2 || p.k > MAX_CLASSES {
        return Err(format!("k must be in 2..={MAX_CLASSES}, got {}", p.k));
    }
    if !(p.restart.is_finite() && p.restart > 0.0 && p.restart <= 1.0) {
        return Err("restart must be in (0, 1]".into());
    }
    if p.max_iter == 0 || p.max_iter > MAX_ITER_CAP {
        return Err(format!(
            "max_iter must be in 1..={MAX_ITER_CAP}, got {}",
            p.max_iter
        ));
    }
    if !(p.tol.is_finite() && p.tol >= 0.0) {
        return Err("tol must be finite and >= 0".into());
    }
    Ok(RwrOptions {
        restart: p.restart,
        max_iter: p.max_iter as usize,
        tol: p.tol,
        norm: wire_norm(p.norm),
        parallelism: ParallelismConfig::from_env(),
    })
}

fn build_seeds(n: usize, k: usize, seeds: &[WireSeed]) -> Result<ExplicitBeliefs, String> {
    let mut explicit = ExplicitBeliefs::new(n, k);
    for s in seeds {
        if s.node >= n as u64 {
            return Err(format!("seed node {} out of range for {n} nodes", s.node));
        }
        if s.residual.iter().any(|x| !x.is_finite()) {
            return Err(format!("seed node {} has non-finite residual", s.node));
        }
        explicit
            .set_residual(s.node as usize, &s.residual)
            .map_err(|e| format!("seed node {}: {e}", s.node))?;
    }
    Ok(explicit)
}

// ---------------------------------------------------------------------------
// Solver thread
// ---------------------------------------------------------------------------

/// Picks the next drainable admission queue: any queue at/over max batch
/// drains immediately; otherwise the one whose window expired longest ago;
/// otherwise none (returning the earliest pending deadline to sleep until).
/// With `force` set (shutdown drain), every queue counts as expired.
fn next_batch(
    admission: &mut Admission,
    config: &ServerConfig,
    force: bool,
) -> Result<PendingGroup, Option<Instant>> {
    let now = Instant::now();
    let mut best: Option<(&GroupKey, Instant)> = None;
    let mut earliest: Option<Instant> = None;
    for (key, group) in &admission.groups {
        if group.jobs.len() >= config.max_batch {
            let key = key.clone();
            return Ok(take_batch(admission, &key, config));
        }
        if force || group.deadline <= now {
            if best.map(|(_, d)| group.deadline < d).unwrap_or(true) {
                best = Some((key, group.deadline));
            }
        } else if earliest.map(|e| group.deadline < e).unwrap_or(true) {
            earliest = Some(group.deadline);
        }
    }
    match best {
        Some((key, _)) => {
            let key = key.clone();
            Ok(take_batch(admission, &key, config))
        }
        None => Err(earliest),
    }
}

/// Removes up to `max_batch` jobs from a queue; a non-empty remainder
/// re-arms with an immediate deadline so it drains next.
fn take_batch(admission: &mut Admission, key: &GroupKey, config: &ServerConfig) -> PendingGroup {
    let mut group = admission.groups.remove(key).expect("group exists");
    if group.jobs.len() > config.max_batch {
        let rest = group.jobs.split_off(config.max_batch);
        admission.groups.insert(
            key.clone(),
            PendingGroup {
                jobs: rest,
                deadline: Instant::now(),
            },
        );
    }
    group
}

fn solver_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut admission = shared.admission.lock().unwrap();
            loop {
                let stopping = shared.stopping.load(Ordering::SeqCst);
                match next_batch(&mut admission, &shared.config, stopping) {
                    Ok(group) => break Some(group),
                    Err(sleep_until) => {
                        if stopping && admission.groups.is_empty() {
                            break None;
                        }
                        match sleep_until {
                            Some(deadline) => {
                                let now = Instant::now();
                                let wait = deadline.saturating_duration_since(now);
                                let (guard, _) = shared
                                    .wakeup
                                    .wait_timeout(admission, wait.max(Duration::from_micros(50)))
                                    .unwrap();
                                admission = guard;
                            }
                            None => {
                                admission = shared.wakeup.wait(admission).unwrap();
                            }
                        }
                    }
                }
            }
        };
        let Some(batch) = batch else { return };
        solve_batch(shared, batch.jobs);
    }
}

/// Runs one drained admission queue as a single stacked solve and fans the
/// per-query results back out to their responders and into the cache.
///
/// Two fault boundaries live here. **Deadlines:** jobs whose budget
/// expired while parked are answered `DeadlineExceeded` up front and do
/// not join the stacked solve (dropping an expired query never perturbs
/// its batch-mates' answers — per-query convergence masks keep each
/// result equal to its solo solve). **Panics:** the solve runs under
/// [`catch_unwind`]; a panicking solve answers every query in its batch
/// with `Internal` and leaves the solver thread, the registry, the cache,
/// and all other parked groups untouched.
fn solve_batch(shared: &Shared, jobs: Vec<SolveJob>) {
    // Deadline check at drain time.
    let now = Instant::now();
    let (jobs, expired): (Vec<SolveJob>, Vec<SolveJob>) = jobs
        .into_iter()
        .partition(|j| j.deadline.is_none_or(|d| now < d));
    for job in expired {
        (job.responder)(deadline_exceeded(shared.config.retry_after_hint));
    }
    if jobs.is_empty() {
        return;
    }
    let q = jobs.len();
    let graph = Arc::clone(&jobs[0].graph);
    let queries: Vec<ExplicitBeliefs> = jobs.iter().map(|j| j.seeds.clone()).collect();

    // (beliefs, converged, diverged, iterations, final_delta,
    // frontier_rows_active, frontier_rows_skipped) per query.
    type Solved = (Mat, bool, bool, u64, f64, u64, u64);
    let panic_on_graph = shared.config.panic_on_graph;
    let batch_graph_id = jobs[0].cache_key.graph_id;
    let kind = &jobs[0].kind;
    let solved: Result<Result<Vec<Solved>, String>, _> = catch_unwind(AssertUnwindSafe(|| {
        if panic_on_graph == Some(batch_graph_id) {
            panic!("injected solver fault for graph {batch_graph_id}");
        }
        let op = graph.operator();
        match kind {
            JobKind::LinBp { echo, h, opts } => {
                let run = if *echo {
                    linbp_batch_on(op, &queries, h, opts)
                } else {
                    linbp_star_batch_on(op, &queries, h, opts)
                };
                run.map(|results| {
                    results
                        .into_iter()
                        .map(|r| {
                            (
                                r.beliefs.into_mat(),
                                r.converged,
                                r.diverged,
                                r.iterations as u64,
                                r.final_delta,
                                r.rows_active,
                                r.rows_skipped,
                            )
                        })
                        .collect()
                })
                .map_err(|e: LinBpError| e.to_string())
            }
            JobKind::Rwr { opts } => rwr_batch_on(op, &queries, opts)
                .map(|results| {
                    results
                        .into_iter()
                        .map(|r| {
                            let iters = r.iterations as u64;
                            let conv = r.converged;
                            (r.beliefs.into_mat(), conv, false, iters, f64::NAN, 0, 0)
                        })
                        .collect()
                })
                .map_err(|e: RwrError| e.to_string()),
        }
    }));

    let solved = match solved {
        Ok(inner) => inner,
        Err(_) => {
            // The solve panicked. Answer every query in the batch with a
            // typed Internal error; nothing else is poisoned — the next
            // batch (this graph included) solves normally.
            shared.counters.lock().unwrap().panics_caught += 1;
            for job in jobs {
                (job.responder)(Response::Error {
                    code: ErrorCode::Internal,
                    message: "solver panicked; query not answered".into(),
                    retry_after_ms: None,
                });
            }
            return;
        }
    };

    let results = match solved {
        Ok(r) => r,
        Err(message) => {
            // Validation should have caught everything recoverable; what
            // remains is reported to every query in the stack.
            for job in jobs {
                (job.responder)(Response::Error {
                    code: ErrorCode::BadRequest,
                    message: message.clone(),
                    retry_after_ms: None,
                });
            }
            return;
        }
    };

    // SpMM accounting: the stack costs max(iterations) sweeps; solved one
    // by one the same queries would have cost Σ iterations.
    let passes = results.iter().map(|r| r.3).max().unwrap_or(0);
    let sequential: u64 = results.iter().map(|r| r.3).sum();
    // A stacked solve records the *same* whole-run frontier totals on every
    // per-query result, so the batch total is the max, not the sum.
    let frontier_active = results.iter().map(|r| r.5).max().unwrap_or(0);
    let frontier_skipped = results.iter().map(|r| r.6).max().unwrap_or(0);
    {
        let mut c = shared.counters.lock().unwrap();
        c.queries_served += q as u64;
        c.spmm_passes += passes;
        c.spmm_passes_sequential_equiv += sequential;
        c.frontier_rows_active += frontier_active;
        c.frontier_rows_skipped += frontier_skipped;
        if q >= 2 {
            c.coalesced_batches += 1;
            c.coalesced_queries += q as u64;
        }
        c.largest_batch = c.largest_batch.max(q as u64);
    }

    let served = if q == 1 {
        ServedVia::Solo
    } else {
        ServedVia::Coalesced { batch: q as u32 }
    };
    for (job, (beliefs, converged, diverged, iterations, final_delta, _, _)) in
        jobs.into_iter().zip(results)
    {
        let patch = match &job.kind {
            JobKind::LinBp { echo, h, opts } => PatchInfo::LinBp {
                echo: *echo,
                h: h.clone(),
                opts: *opts,
            },
            JobKind::Rwr { .. } => PatchInfo::None,
        };
        let entry = CacheEntry {
            k: beliefs.cols() as u32,
            beliefs,
            converged,
            diverged,
            iterations,
            final_delta,
            patched: false,
            patch,
        };
        let payload = entry.payload(served);
        {
            let mut cache = shared.cache.lock().unwrap();
            let cap = shared.config.cache_capacity;
            cache.insert(job.cache_key, entry, cap);
        }
        (job.responder)(Response::Beliefs(payload));
    }
}

//! TCP transport: a small poll(2) event loop (no async runtime) that
//! decodes frames off nonblocking sockets, feeds them to the
//! [`ServerCore`], and streams encoded responses back as they complete.
//!
//! The wire model is **one outstanding request per connection** — a client
//! wanting concurrency opens more connections, which is exactly what lets
//! the admission layer coalesce across clients. (Pipelining still works:
//! every complete frame in the read buffer is submitted.) Responses
//! produced on the solver thread travel back through an [`mpsc`] channel
//! the event loop drains every tick, so socket writes stay on the single
//! transport thread.
//!
//! ## Fault containment
//!
//! A misbehaving peer can only hurt itself:
//!
//! * a frame header claiming more than [`lsbp_net::MAX_FRAME_LEN`] is
//!   rejected **as soon as the 4 header bytes arrive** — even dribbled a
//!   byte at a time — with a clean `BadRequest` before any buffering;
//! * the read buffer is bounded per tick, so a blasting peer cannot make
//!   one `read` loop allocate without limit;
//! * response bytes buffered for a peer are capped
//!   ([`crate::core::ServerConfig::max_write_buf`]); a pipelining client
//!   that stops reading is dropped, not buffered forever;
//! * a connection idle past `idle_timeout` (including one parked mid-frame
//!   by a stalling sender) is reaped;
//! * a writer making no progress past `write_stall_timeout` is reaped;
//! * `EMFILE`/`ENFILE` on accept pauses the listener briefly instead of
//!   spinning or killing the serve loop.

use crate::core::ServerCore;
use lsbp_net::{
    extract_frame, oversized_claim, salvage_request_id, ErrorCode, RequestEnvelope, Response,
    ResponseEnvelope, WireError,
};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Connection identity within one `serve` call.
type ConnId = u64;

/// Runs the serving loop on an already-bound listener until the core
/// accepts a shutdown and every in-flight response has been flushed.
pub fn serve(listener: TcpListener, core: &ServerCore) -> io::Result<()> {
    imp::serve(listener, core)
}

struct ConnState<S> {
    stream: S,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    written: usize,
    /// Requests submitted on this connection still awaiting a response.
    in_flight: u64,
    /// Stop reading and drop the connection once the write buffer drains.
    closing: bool,
    /// Last moment bytes moved on this connection (either direction).
    last_activity: Instant,
    /// Set when a flush makes no progress while bytes are pending;
    /// cleared on progress. Drives the slow-writer eviction.
    stalled_since: Option<Instant>,
}

impl<S> ConnState<S> {
    fn new(stream: S) -> Self {
        Self {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            in_flight: 0,
            closing: false,
            last_activity: Instant::now(),
            stalled_since: None,
        }
    }

    fn queue(&mut self, frame_payload: &[u8]) {
        let len = frame_payload.len() as u32;
        self.write_buf.extend_from_slice(&len.to_le_bytes());
        self.write_buf.extend_from_slice(frame_payload);
    }

    fn pending_write(&self) -> bool {
        self.written < self.write_buf.len()
    }

    fn pending_write_bytes(&self) -> usize {
        self.write_buf.len() - self.written
    }
}

/// Decodes and submits every complete frame in `conn.read_buf`; malformed
/// input queues an error response (with the salvaged correlation id) and
/// marks the connection closing.
fn pump_requests<S>(
    conn: &mut ConnState<S>,
    id: ConnId,
    core: &ServerCore,
    tx: &mpsc::Sender<(ConnId, Vec<u8>)>,
) {
    loop {
        match extract_frame(&mut conn.read_buf) {
            Ok(Some(payload)) => match RequestEnvelope::decode(&payload) {
                Ok(env) => {
                    conn.in_flight += 1;
                    let rid = env.request_id;
                    let deadline = env
                        .deadline_ms
                        .map(|ms| Instant::now() + Duration::from_millis(ms));
                    let tx = tx.clone();
                    core.submit_at(
                        env.request,
                        deadline,
                        Box::new(move |response| {
                            let _ = tx.send((id, ResponseEnvelope::new(rid, response).encode()));
                        }),
                    );
                }
                Err(e) => {
                    let rid = salvage_request_id(&payload);
                    conn.queue(&ResponseEnvelope::new(rid, decode_error(&e)).encode());
                    conn.closing = true;
                    return;
                }
            },
            Ok(None) => return,
            Err(e) => {
                conn.queue(&ResponseEnvelope::new(0, decode_error(&e)).encode());
                conn.closing = true;
                return;
            }
        }
    }
}

fn decode_error(e: &WireError) -> Response {
    Response::Error {
        code: ErrorCode::BadRequest,
        message: format!("malformed request frame: {e}"),
        retry_after_ms: None,
    }
}

fn flush<S: Write>(conn: &mut ConnState<S>) -> io::Result<()> {
    let before = conn.written;
    while conn.pending_write() {
        match conn.stream.write(&conn.write_buf[conn.written..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => conn.written += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if conn.written > before {
        conn.last_activity = Instant::now();
        conn.stalled_since = None;
    } else if conn.pending_write() && conn.stalled_since.is_none() {
        conn.stalled_since = Some(Instant::now());
    }
    if conn.written == conn.write_buf.len() && conn.written > 0 {
        conn.write_buf.clear();
        conn.written = 0;
    }
    Ok(())
}

#[cfg(unix)]
mod imp {
    use super::*;
    use std::net::TcpStream;
    use std::os::raw::{c_int, c_short, c_ulong};
    use std::os::unix::io::{AsRawFd, RawFd};

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;
    const POLLNVAL: c_short = 0x020;

    /// How long the listener stays paused after running out of file
    /// descriptors (`EMFILE`/`ENFILE`) — long enough for a connection to
    /// finish, short enough to resume serving promptly.
    const ACCEPT_PAUSE: Duration = Duration::from_millis(100);

    #[repr(C)]
    struct PollFd {
        fd: RawFd,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    fn poll_fds(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
        loop {
            let rc = unsafe {
                poll(
                    fds.as_mut_ptr(),
                    fds.len() as c_ulong,
                    timeout.as_millis() as c_int,
                )
            };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// `true` for accept errors that mean "try again later", not "die":
    /// out of file descriptors or kernel buffers.
    fn accept_resource_exhausted(e: &io::Error) -> bool {
        // EMFILE = 24, ENFILE = 23, ENOBUFS = 105, ENOMEM = 12 (Linux).
        matches!(e.raw_os_error(), Some(24) | Some(23) | Some(105) | Some(12))
            || e.kind() == io::ErrorKind::OutOfMemory
    }

    /// `true` for accept errors about the *accepted* connection (already
    /// reset by the peer) rather than the listener — skip and keep going.
    fn accept_transient(e: &io::Error) -> bool {
        matches!(
            e.kind(),
            io::ErrorKind::ConnectionAborted | io::ErrorKind::ConnectionReset
        )
    }

    pub fn serve(listener: TcpListener, core: &ServerCore) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        let (tx, rx) = mpsc::channel::<(ConnId, Vec<u8>)>();
        let mut conns: HashMap<ConnId, ConnState<TcpStream>> = HashMap::new();
        let mut next_id: ConnId = 0;
        let mut pause_accept_until: Option<Instant> = None;
        let idle_timeout = core.config().idle_timeout;
        let write_stall_timeout = core.config().write_stall_timeout;
        let max_write_buf = core.config().max_write_buf;

        loop {
            // Deliver finished responses to their connections' write buffers.
            while let Ok((id, payload)) = rx.try_recv() {
                if let Some(conn) = conns.get_mut(&id) {
                    conn.in_flight = conn.in_flight.saturating_sub(1);
                    conn.queue(&payload);
                }
            }

            let stopping = core.is_stopping();
            if stopping {
                // Drain: no new connections; leave once nothing is owed.
                let owed = conns.values().any(|c| c.in_flight > 0 || c.pending_write());
                if !owed {
                    return Ok(());
                }
            }

            let now = Instant::now();
            let accept_paused = pause_accept_until.is_some_and(|until| now < until);
            if !accept_paused {
                pause_accept_until = None;
            }

            let mut fds = Vec::with_capacity(conns.len() + 1);
            let mut index: Vec<Option<ConnId>> = Vec::with_capacity(conns.len() + 1);
            if !stopping && !accept_paused {
                fds.push(PollFd {
                    fd: listener.as_raw_fd(),
                    events: POLLIN,
                    revents: 0,
                });
                index.push(None);
            }
            for (&id, conn) in &conns {
                let mut events = 0;
                if !conn.closing {
                    events |= POLLIN;
                }
                if conn.pending_write() {
                    events |= POLLOUT;
                }
                fds.push(PollFd {
                    fd: conn.stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
                index.push(Some(id));
            }
            // Short timeout: the channel above has no fd to poll on, so
            // ticks double as its drain cadence (and as the timeout sweep).
            poll_fds(&mut fds, Duration::from_millis(5))?;

            let mut dead: Vec<ConnId> = Vec::new();
            for (slot, fd) in index.iter().zip(&fds) {
                match slot {
                    None => {
                        if fd.revents & POLLIN != 0 {
                            loop {
                                match listener.accept() {
                                    Ok((stream, _)) => {
                                        stream.set_nonblocking(true)?;
                                        stream.set_nodelay(true).ok();
                                        let id = next_id;
                                        next_id += 1;
                                        conns.insert(id, ConnState::new(stream));
                                    }
                                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                                    Err(e) if accept_transient(&e) => continue,
                                    Err(e) if accept_resource_exhausted(&e) => {
                                        // Out of fds: stop polling the
                                        // listener for a beat instead of
                                        // spin-looping on accept.
                                        pause_accept_until = Some(Instant::now() + ACCEPT_PAUSE);
                                        break;
                                    }
                                    Err(e) => return Err(e),
                                }
                            }
                        }
                    }
                    Some(id) => {
                        let conn = conns.get_mut(id).expect("indexed connection exists");
                        if fd.revents & (POLLERR | POLLNVAL) != 0 {
                            dead.push(*id);
                            continue;
                        }
                        if fd.revents & (POLLIN | POLLHUP) != 0 && !conn.closing {
                            match read_available(conn) {
                                Ok(open) => {
                                    pump_requests(conn, *id, core, &tx);
                                    if !open {
                                        if conn.pending_write() || conn.in_flight > 0 {
                                            conn.closing = true;
                                        } else {
                                            dead.push(*id);
                                            continue;
                                        }
                                    }
                                }
                                Err(_) => {
                                    dead.push(*id);
                                    continue;
                                }
                            }
                        }
                        if conn.pending_write() && flush(conn).is_err() {
                            dead.push(*id);
                            continue;
                        }
                        // Bounded write buffer: a pipelining peer that has
                        // stopped reading does not get to hold response
                        // bytes without limit.
                        if conn.pending_write_bytes() > max_write_buf {
                            dead.push(*id);
                            continue;
                        }
                        // Slow-writer eviction: pending bytes but no write
                        // progress for too long.
                        if conn
                            .stalled_since
                            .is_some_and(|s| s.elapsed() > write_stall_timeout)
                        {
                            dead.push(*id);
                            continue;
                        }
                        // Idle reaping: nothing owed, nothing moving. Also
                        // collects peers parked mid-frame forever.
                        if conn.in_flight == 0
                            && !conn.pending_write()
                            && conn.last_activity.elapsed() > idle_timeout
                        {
                            dead.push(*id);
                            continue;
                        }
                        if conn.closing && !conn.pending_write() && conn.in_flight == 0 {
                            dead.push(*id);
                        }
                    }
                }
            }
            for id in dead {
                conns.remove(&id);
            }
        }
    }

    /// Nonblocking read into the connection's frame buffer. `Ok(false)`
    /// means the peer closed its write side.
    ///
    /// Hostile-input bounds: the moment 4 header bytes exist the claimed
    /// frame length is checked (`oversized_claim`), so an absurd length
    /// dribbled in fragments stops the read immediately — `pump_requests`
    /// then surfaces the typed `BadRequest`. Independently, one tick
    /// buffers at most `MAX_FRAME_LEN + 4` unconsumed bytes; a peer
    /// blasting faster than the pump drains resumes next tick.
    fn read_available(conn: &mut ConnState<TcpStream>) -> io::Result<bool> {
        let read_cap = lsbp_net::MAX_FRAME_LEN + 4;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if oversized_claim(&conn.read_buf).is_some() || conn.read_buf.len() >= read_cap {
                return Ok(true);
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => return Ok(false),
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(true),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use super::*;
    use std::net::TcpStream;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::thread;

    /// Portable fallback: one blocking thread per connection. Coalescing
    /// still happens — all threads feed the same admission layer.
    pub fn serve(listener: TcpListener, core: &ServerCore) -> io::Result<()> {
        thread::scope(|scope| {
            let live = Arc::new(AtomicU64::new(0));
            for stream in listener.incoming() {
                if core.is_stopping() {
                    break;
                }
                let stream = stream?;
                let live = Arc::clone(&live);
                live.fetch_add(1, Ordering::SeqCst);
                scope.spawn(move || {
                    let _ = handle_conn(stream, core);
                    live.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Ok(())
        })
    }

    fn handle_conn(stream: TcpStream, core: &ServerCore) -> io::Result<()> {
        // The blocking fallback leans on socket timeouts for idle and
        // slow-writer protection.
        stream
            .set_read_timeout(Some(core.config().idle_timeout))
            .ok();
        stream
            .set_write_timeout(Some(core.config().write_stall_timeout))
            .ok();
        let mut conn = ConnState::new(stream);
        let (tx, rx) = mpsc::channel::<(ConnId, Vec<u8>)>();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if oversized_claim(&conn.read_buf).is_none() {
                let n = conn.stream.read(&mut chunk)?;
                if n == 0 {
                    return Ok(());
                }
                conn.read_buf.extend_from_slice(&chunk[..n]);
            }
            pump_requests(&mut conn, 0, core, &tx);
            while conn.in_flight > 0 {
                let (_, payload) = rx.recv().expect("responder fires");
                conn.in_flight -= 1;
                conn.queue(&payload);
            }
            let buf = std::mem::take(&mut conn.write_buf);
            conn.stream.write_all(&buf[conn.written..])?;
            conn.written = 0;
            if conn.closing {
                return Ok(());
            }
        }
    }
}

//! TCP transport: a small poll(2) event loop (no async runtime) that
//! decodes frames off nonblocking sockets, feeds them to the
//! [`ServerCore`], and streams encoded responses back as they complete.
//!
//! The wire model is **one outstanding request per connection** — a client
//! wanting concurrency opens more connections, which is exactly what lets
//! the admission layer coalesce across clients. Responses produced on the
//! solver thread travel back through an [`mpsc`] channel the event loop
//! drains every tick, so socket writes stay on the single transport
//! thread.

use crate::core::ServerCore;
use lsbp_net::{extract_frame, ErrorCode, Request, Response, WireError};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::sync::mpsc;

/// Connection identity within one `serve` call.
type ConnId = u64;

/// Runs the serving loop on an already-bound listener until the core
/// accepts a shutdown and every in-flight response has been flushed.
pub fn serve(listener: TcpListener, core: &ServerCore) -> io::Result<()> {
    imp::serve(listener, core)
}

struct ConnState<S> {
    stream: S,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    written: usize,
    /// Requests submitted on this connection still awaiting a response.
    in_flight: u64,
    /// Stop reading and drop the connection once the write buffer drains.
    closing: bool,
}

impl<S> ConnState<S> {
    fn new(stream: S) -> Self {
        Self {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            in_flight: 0,
            closing: false,
        }
    }

    fn queue(&mut self, frame_payload: &[u8]) {
        let len = frame_payload.len() as u32;
        self.write_buf.extend_from_slice(&len.to_le_bytes());
        self.write_buf.extend_from_slice(frame_payload);
    }

    fn pending_write(&self) -> bool {
        self.written < self.write_buf.len()
    }
}

/// Decodes and submits every complete frame in `conn.read_buf`; malformed
/// input queues an error response and marks the connection closing.
fn pump_requests<S>(
    conn: &mut ConnState<S>,
    id: ConnId,
    core: &ServerCore,
    tx: &mpsc::Sender<(ConnId, Vec<u8>)>,
) {
    loop {
        match extract_frame(&mut conn.read_buf) {
            Ok(Some(payload)) => match Request::decode(&payload) {
                Ok(request) => {
                    conn.in_flight += 1;
                    let tx = tx.clone();
                    core.submit(
                        request,
                        Box::new(move |response| {
                            let _ = tx.send((id, response.encode()));
                        }),
                    );
                }
                Err(e) => {
                    conn.queue(&decode_error(&e).encode());
                    conn.closing = true;
                    return;
                }
            },
            Ok(None) => return,
            Err(e) => {
                conn.queue(&decode_error(&e).encode());
                conn.closing = true;
                return;
            }
        }
    }
}

fn decode_error(e: &WireError) -> Response {
    Response::Error {
        code: ErrorCode::BadRequest,
        message: format!("malformed request frame: {e}"),
    }
}

fn flush<S: Write>(conn: &mut ConnState<S>) -> io::Result<()> {
    while conn.pending_write() {
        match conn.stream.write(&conn.write_buf[conn.written..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => conn.written += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if conn.written == conn.write_buf.len() && conn.written > 0 {
        conn.write_buf.clear();
        conn.written = 0;
    }
    Ok(())
}

#[cfg(unix)]
mod imp {
    use super::*;
    use std::net::TcpStream;
    use std::os::raw::{c_int, c_short, c_ulong};
    use std::os::unix::io::{AsRawFd, RawFd};
    use std::time::Duration;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;
    const POLLNVAL: c_short = 0x020;

    #[repr(C)]
    struct PollFd {
        fd: RawFd,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    fn poll_fds(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
        loop {
            let rc = unsafe {
                poll(
                    fds.as_mut_ptr(),
                    fds.len() as c_ulong,
                    timeout.as_millis() as c_int,
                )
            };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    pub fn serve(listener: TcpListener, core: &ServerCore) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        let (tx, rx) = mpsc::channel::<(ConnId, Vec<u8>)>();
        let mut conns: HashMap<ConnId, ConnState<TcpStream>> = HashMap::new();
        let mut next_id: ConnId = 0;

        loop {
            // Deliver finished responses to their connections' write buffers.
            while let Ok((id, payload)) = rx.try_recv() {
                if let Some(conn) = conns.get_mut(&id) {
                    conn.in_flight = conn.in_flight.saturating_sub(1);
                    conn.queue(&payload);
                }
            }

            let stopping = core.is_stopping();
            if stopping {
                // Drain: no new connections; leave once nothing is owed.
                let owed = conns.values().any(|c| c.in_flight > 0 || c.pending_write());
                if !owed {
                    return Ok(());
                }
            }

            let mut fds = Vec::with_capacity(conns.len() + 1);
            let mut index: Vec<Option<ConnId>> = Vec::with_capacity(conns.len() + 1);
            if !stopping {
                fds.push(PollFd {
                    fd: listener.as_raw_fd(),
                    events: POLLIN,
                    revents: 0,
                });
                index.push(None);
            }
            for (&id, conn) in &conns {
                let mut events = 0;
                if !conn.closing {
                    events |= POLLIN;
                }
                if conn.pending_write() {
                    events |= POLLOUT;
                }
                fds.push(PollFd {
                    fd: conn.stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
                index.push(Some(id));
            }
            // Short timeout: the channel above has no fd to poll on, so
            // ticks double as its drain cadence.
            poll_fds(&mut fds, Duration::from_millis(5))?;

            let mut dead: Vec<ConnId> = Vec::new();
            for (slot, fd) in index.iter().zip(&fds) {
                match slot {
                    None => {
                        if fd.revents & POLLIN != 0 {
                            loop {
                                match listener.accept() {
                                    Ok((stream, _)) => {
                                        stream.set_nonblocking(true)?;
                                        stream.set_nodelay(true).ok();
                                        let id = next_id;
                                        next_id += 1;
                                        conns.insert(id, ConnState::new(stream));
                                    }
                                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                                    Err(e) => return Err(e),
                                }
                            }
                        }
                    }
                    Some(id) => {
                        let conn = conns.get_mut(id).expect("indexed connection exists");
                        if fd.revents & (POLLERR | POLLNVAL) != 0 {
                            dead.push(*id);
                            continue;
                        }
                        if fd.revents & (POLLIN | POLLHUP) != 0 && !conn.closing {
                            match read_available(conn) {
                                Ok(open) => {
                                    pump_requests(conn, *id, core, &tx);
                                    if !open {
                                        if conn.pending_write() || conn.in_flight > 0 {
                                            conn.closing = true;
                                        } else {
                                            dead.push(*id);
                                            continue;
                                        }
                                    }
                                }
                                Err(_) => {
                                    dead.push(*id);
                                    continue;
                                }
                            }
                        }
                        if conn.pending_write() && flush(conn).is_err() {
                            dead.push(*id);
                            continue;
                        }
                        if conn.closing && !conn.pending_write() && conn.in_flight == 0 {
                            dead.push(*id);
                        }
                    }
                }
            }
            for id in dead {
                conns.remove(&id);
            }
        }
    }

    /// Nonblocking read into the connection's frame buffer. `Ok(false)`
    /// means the peer closed its write side.
    fn read_available(conn: &mut ConnState<TcpStream>) -> io::Result<bool> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => return Ok(false),
                Ok(n) => conn.read_buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(true),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use super::*;
    use std::net::TcpStream;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::thread;

    /// Portable fallback: one blocking thread per connection. Coalescing
    /// still happens — all threads feed the same admission layer.
    pub fn serve(listener: TcpListener, core: &ServerCore) -> io::Result<()> {
        thread::scope(|scope| {
            let live = Arc::new(AtomicU64::new(0));
            for stream in listener.incoming() {
                if core.is_stopping() {
                    break;
                }
                let stream = stream?;
                let live = Arc::clone(&live);
                live.fetch_add(1, Ordering::SeqCst);
                scope.spawn(move || {
                    let _ = handle_conn(stream, core);
                    live.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Ok(())
        })
    }

    fn handle_conn(stream: TcpStream, core: &ServerCore) -> io::Result<()> {
        let mut conn = ConnState::new(stream);
        let (tx, rx) = mpsc::channel::<(ConnId, Vec<u8>)>();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let n = conn.stream.read(&mut chunk)?;
            if n == 0 {
                return Ok(());
            }
            conn.read_buf.extend_from_slice(&chunk[..n]);
            pump_requests(&mut conn, 0, core, &tx);
            while conn.in_flight > 0 {
                let (_, payload) = rx.recv().expect("responder fires");
                conn.in_flight -= 1;
                conn.queue(&payload);
            }
            let buf = std::mem::take(&mut conn.write_buf);
            conn.stream.write_all(&buf[conn.written..])?;
            conn.written = 0;
            if conn.closing {
                return Ok(());
            }
        }
    }
}

//! Learning the coupling matrix from data — the paper's footnote-1 future
//! work — and maintaining LinBP incrementally through label updates — the
//! Sect. 8 future work, solved by linearity.
//!
//! Pipeline: generate a fraud network with ground-truth roles, learn Ĥ
//! from the labeled subgraph (no domain expert needed), classify with
//! LinBP, then stream in new labels using `linbp_update` instead of
//! recomputing. Run with:
//! `cargo run --release --example learned_coupling`

use lsbp::prelude::*;
use lsbp_graph::generators::{fraud_network, FraudConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let net = fraud_network(&FraudConfig::default(), 77);
    let n = net.graph.num_nodes();
    let adj = net.graph.adjacency();
    println!("network: {n} users, {} trades", net.graph.num_edges());

    // Reveal 8% of labels; learn the coupling from the labeled-labeled
    // edges only.
    let mut rng = StdRng::seed_from_u64(1);
    let mut revealed: Vec<Option<usize>> = vec![None; n];
    let mut explicit = ExplicitBeliefs::new(n, 3);
    let mut count = 0;
    while count < n * 8 / 100 {
        let v = rng.gen_range(0..n);
        if revealed[v].is_none() {
            revealed[v] = Some(net.classes[v]);
            explicit.set_label(v, net.classes[v], 1.0).unwrap();
            count += 1;
        }
    }
    let learned =
        learn_coupling(&adj, &revealed, 3, &LearnOptions::default()).expect("enough labeled edges");
    println!("\nlearned coupling matrix (truth: Fig. 1c = [[.6,.3,.1],[.3,0,.7],[.1,.7,.2]]):");
    for r in 0..3 {
        println!(
            "  [{:.2} {:.2} {:.2}]",
            learned.raw()[(r, 0)],
            learned.raw()[(r, 1)],
            learned.raw()[(r, 2)]
        );
    }

    // Classify with the learned matrix.
    let eps = 0.5 * eps_max_exact_linbp(&learned.residual(), &adj, 1e-4);
    let h = learned.scaled_residual(eps);
    let opts = LinBpOptions::default();
    let t0 = Instant::now();
    let mut result = linbp(&adj, &explicit, &h, &opts).unwrap();
    let full_time = t0.elapsed();
    fn accuracy_of(beliefs: &BeliefMatrix, classes: &[usize], revealed: &[Option<usize>]) -> f64 {
        let (mut correct, mut total) = (0, 0);
        for (v, &truth) in classes.iter().enumerate() {
            if revealed[v].is_some() {
                continue;
            }
            let tops = beliefs.top_beliefs(v, 1e-9);
            if tops.len() == 1 {
                total += 1;
                if tops[0] == truth {
                    correct += 1;
                }
            }
        }
        100.0 * correct as f64 / total as f64
    }
    println!(
        "\nLinBP with learned Ĥ: {:.1}% accuracy on hidden users ({full_time:?})",
        accuracy_of(&result.beliefs, &net.classes, &revealed)
    );

    // Stream 10 new audit labels; update by linearity instead of re-running.
    let mut update_time = std::time::Duration::ZERO;
    for _ in 0..10 {
        let v = loop {
            let v = rng.gen_range(0..n);
            if revealed[v].is_none() {
                break v;
            }
        };
        revealed[v] = Some(net.classes[v]);
        let mut delta = ExplicitBeliefs::new(n, 3);
        delta.set_label(v, net.classes[v], 1.0).unwrap();
        let t = Instant::now();
        result = linbp_update(&adj, &result.beliefs, &delta, &h, &opts, true).unwrap();
        update_time += t.elapsed();
    }
    println!(
        "after 10 incremental label updates (linearity, {update_time:?} total): {:.1}% accuracy",
        accuracy_of(&result.beliefs, &net.classes, &revealed)
    );

    // Sanity: the incremental result equals a full recomputation.
    let mut all = ExplicitBeliefs::new(n, 3);
    for (v, lab) in revealed.iter().enumerate() {
        if let Some(c) = lab {
            all.set_label(v, *c, 1.0).unwrap();
        }
    }
    let scratch = linbp(&adj, &all, &h, &opts).unwrap();
    let max_diff = result
        .beliefs
        .residual()
        .max_abs_diff(scratch.beliefs.residual());
    println!("max |incremental − scratch| = {max_diff:.2e} (exact up to solver tolerance)");
}

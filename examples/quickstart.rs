//! Quickstart: label the 8-node torus of the paper's Example 20 with all
//! four methods (BP, LinBP, LinBP*, SBP) and print what each one says.
//!
//! Run with: `cargo run --example quickstart`

use lsbp::prelude::*;
use lsbp_graph::generators::fig5c_torus;

fn print_assignment(label: &str, beliefs: &BeliefMatrix) {
    let assignment = beliefs.top_belief_assignment(1e-9);
    let rendered: Vec<String> = assignment
        .iter()
        .enumerate()
        .map(|(v, classes)| {
            let names: Vec<&str> = classes
                .iter()
                .map(|&c| ["Honest", "Accomplice", "Fraudster"][c])
                .collect();
            format!("v{}={}", v + 1, names.join("/"))
        })
        .collect();
    println!("{label:8} {}", rendered.join("  "));
}

fn main() {
    // The graph of Fig. 5c: inner square v5–v8 with one pendant each.
    let graph = fig5c_torus();
    let adj = graph.adjacency();

    // The general (homophily + heterophily) coupling matrix of Fig. 1c.
    let coupling = CouplingMatrix::fig1c().expect("valid preset");

    // Explicit beliefs: v1 → class 0, v2 → class 1, v3 → class 2.
    let mut explicit = ExplicitBeliefs::new(graph.num_nodes(), 3);
    explicit.set_residual(0, &[2.0, -1.0, -1.0]).unwrap();
    explicit.set_residual(1, &[-1.0, 2.0, -1.0]).unwrap();
    explicit.set_residual(2, &[-1.0, -1.0, 2.0]).unwrap();

    // How strong may the coupling be? Lemma 8 answers exactly.
    let ho = coupling.residual();
    let eps_linbp = eps_max_exact_linbp(&ho, &adj, 1e-5);
    let eps_star = eps_max_exact_linbp_star(&ho, &adj);
    println!(
        "exact convergence thresholds:  LinBP εH < {eps_linbp:.3},  LinBP* εH < {eps_star:.3}"
    );

    // Run everything at a comfortably convergent εH.
    let eps = 0.1;
    let h = coupling.scaled_residual(eps);

    let bp_result = bp(
        &adj,
        &explicit,
        &coupling.raw_at_scale(eps),
        &BpOptions::default(),
    )
    .expect("valid BP configuration");
    println!(
        "BP:      converged={} after {} iterations",
        bp_result.converged, bp_result.iterations
    );

    let linbp_result = linbp(&adj, &explicit, &h, &LinBpOptions::default()).unwrap();
    println!(
        "LinBP:   converged={} after {} iterations",
        linbp_result.converged, linbp_result.iterations
    );
    let star_result = linbp_star(&adj, &explicit, &h, &LinBpOptions::default()).unwrap();

    // SBP needs no εH at all — its labels are the εH → 0 limit.
    let sbp_result = sbp(&adj, &explicit, &ho).unwrap();

    println!();
    print_assignment("BP", &bp_result.beliefs);
    print_assignment("LinBP", &linbp_result.beliefs);
    print_assignment("LinBP*", &star_result.beliefs);
    print_assignment("SBP", &sbp_result.beliefs);

    // The headline of Example 20: v4's standardized beliefs under SBP.
    let std = sbp_result.beliefs.standardized(3);
    println!(
        "\nSBP standardized beliefs of v4: [{:.3}, {:.3}, {:.3}]  (paper: [-0.069, 1.258, -1.189])",
        std[0], std[1], std[2]
    );
}

//! Fraud detection in an online-auction network — the paper's motivating
//! example (Sect. 1, Fig. 1c).
//!
//! Generates an eBay-style trading network of honest users, accomplices
//! and fraudsters, reveals a few known labels (e.g. from manual
//! investigation), and uses LinBP with the general coupling matrix of
//! Fig. 1c to flag the rest. Run with:
//! `cargo run --release --example fraud_detection`

use lsbp::prelude::*;
use lsbp_graph::generators::{fraud_network, FraudConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let cfg = FraudConfig::default();
    let net = fraud_network(&cfg, 2024);
    let n = net.graph.num_nodes();
    let adj = net.graph.adjacency();
    println!(
        "trading network: {} users ({} honest, {} accomplices, {} fraudsters), {} trades",
        n,
        cfg.n_honest,
        cfg.n_accomplices,
        cfg.n_fraudsters,
        net.graph.num_edges()
    );

    // Reveal 5% of the ground truth, stratified over the three roles.
    let mut rng = StdRng::seed_from_u64(7);
    let mut explicit = ExplicitBeliefs::new(n, 3);
    let mut revealed = 0;
    while revealed < n / 20 {
        let v = rng.gen_range(0..n);
        if !explicit.is_explicit(v) {
            explicit.set_label(v, net.classes[v], 1.0).unwrap();
            revealed += 1;
        }
    }
    println!(
        "revealed labels: {revealed} ({:.1}%)",
        100.0 * revealed as f64 / n as f64
    );

    // Fig. 1c: honest↔honest homophily, accomplice↔fraudster heterophily.
    let coupling = CouplingMatrix::fig1c().unwrap();
    let eps_max = eps_max_exact_linbp(&coupling.residual(), &adj, 1e-4);
    let eps = (0.5 * eps_max).min(0.1);
    println!("coupling scale: εH = {eps:.4} (exact convergence bound {eps_max:.4})");

    let result = linbp(
        &adj,
        &explicit,
        &coupling.scaled_residual(eps),
        &LinBpOptions::default(),
    )
    .unwrap();
    assert!(
        result.converged,
        "εH was chosen inside the convergence region"
    );

    // Score the classification on the hidden nodes.
    let mut correct = 0usize;
    let mut evaluated = 0usize;
    let mut confusion = [[0usize; 3]; 3];
    for v in 0..n {
        if explicit.is_explicit(v) {
            continue;
        }
        let tops = result.beliefs.top_beliefs(v, 1e-9);
        if tops.len() == 1 {
            confusion[net.classes[v]][tops[0]] += 1;
            if tops[0] == net.classes[v] {
                correct += 1;
            }
            evaluated += 1;
        }
    }
    println!(
        "\naccuracy on {} hidden users: {:.1}%",
        evaluated,
        100.0 * correct as f64 / evaluated as f64
    );
    println!("confusion matrix (rows = truth, cols = predicted):");
    println!("              Honest  Accomp  Fraud");
    for (i, name) in ["Honest", "Accomplice", "Fraudster"].iter().enumerate() {
        println!(
            "  {name:<10} {:>7} {:>7} {:>6}",
            confusion[i][0], confusion[i][1], confusion[i][2]
        );
    }

    // Show the most suspicious unlabeled accounts: strongest fraudster
    // residuals.
    let mut suspects: Vec<(usize, f64)> = (0..n)
        .filter(|&v| !explicit.is_explicit(v))
        .map(|v| (v, result.beliefs.row(v)[2]))
        .collect();
    suspects.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop 5 fraud suspects:");
    for &(v, score) in suspects.iter().take(5) {
        let truth = ["honest", "accomplice", "FRAUDSTER"][net.classes[v]];
        println!("  user {v:>4}  fraud-residual {score:+.4}  (ground truth: {truth})");
    }
}

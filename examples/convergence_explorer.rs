//! Convergence explorer: prints, for a family of graphs, all five
//! convergence thresholds the paper discusses —
//!
//! * exact LinBP (Lemma 8, Eq. 16, via bisection on the operator radius),
//! * exact LinBP* (Eq. 17, ρ(Ĥo)·ρ(A)),
//! * sufficient Lemma 9 for both,
//! * the simpler Lemma 23 bound,
//!
//! plus the Mooij–Kappen certificate for standard BP (Appendix G), and
//! then *verifies* the exact bounds empirically by running the iteration
//! just below and just above each threshold. Run with:
//! `cargo run --release --example convergence_explorer`

use lsbp::convergence::{eps_max_lemma23, mooij_constant, rho_edge_matrix};
use lsbp::prelude::*;
use lsbp_graph::generators::{complete, cycle, erdos_renyi_gnm, fig5c_torus, grid_2d, star};
use lsbp_graph::Graph;

fn main() {
    let coupling = CouplingMatrix::fig1c().unwrap();
    let ho = coupling.residual();
    let cases: Vec<(&str, Graph)> = vec![
        ("torus (Fig. 5c)", fig5c_torus()),
        ("cycle C12", cycle(12)),
        ("star K1,15", star(16)),
        ("grid 6×6", grid_2d(6, 6)),
        ("clique K8", complete(8)),
        ("G(200, 800)", erdos_renyi_gnm(200, 800, 1)),
    ];

    println!(
        "{:<16} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "graph", "ρ(A)", "exact", "exact*", "suff(L9)", "suff*(L9)", "L23", "Mooij εH"
    );
    for (name, graph) in &cases {
        let adj = graph.adjacency();
        let rho_a = adj.spectral_radius();
        let exact = eps_max_exact_linbp(&ho, &adj, 1e-5);
        let exact_star = eps_max_exact_linbp_star(&ho, &adj);
        let suff = eps_max_sufficient_linbp(&ho, &adj);
        let suff_star = eps_max_sufficient_linbp_star(&ho, &adj);
        let l23 = eps_max_lemma23(&ho, &adj);
        // Mooij: largest εH whose raw coupling the bound still certifies
        // for standard BP (bisection over c(H(ε))·ρ(A_edge) < 1).
        let rho_edge = rho_edge_matrix(&adj);
        let mooij_eps = bisect_mooij(&coupling, rho_edge);
        println!(
            "{name:<16} {rho_a:>7.3} {exact:>9.4} {exact_star:>9.4} {suff:>9.4} {suff_star:>9.4} {l23:>9.4} {mooij_eps:>10.4}"
        );
    }

    // Empirical verification on the torus: the exact bound separates
    // convergent from divergent runs.
    println!("\nempirical check on the torus (LinBP iterations at 0.97/1.03 × exact bound):");
    let graph = fig5c_torus();
    let adj = graph.adjacency();
    let mut e = ExplicitBeliefs::new(8, 3);
    e.set_residual(0, &[2.0, -1.0, -1.0]).unwrap();
    let exact = eps_max_exact_linbp(&ho, &adj, 1e-6);
    for factor in [0.97, 1.03] {
        let r = linbp(
            &adj,
            &e,
            &coupling.scaled_residual(exact * factor),
            &LinBpOptions {
                max_iter: 100_000,
                tol: 1e-13,
                ..Default::default()
            },
        )
        .unwrap();
        println!(
            "  εH = {:.4} ({}×): converged={} diverged={} after {} iterations",
            exact * factor,
            factor,
            r.converged,
            r.diverged,
            r.iterations
        );
    }
}

/// Largest εH the Mooij–Kappen bound certifies for standard BP
/// (c(H(ε))·ρ(A_edge) < 1), found by bisection; ∞ on trees (ρ_edge = 0).
fn bisect_mooij(coupling: &CouplingMatrix, rho_edge: f64) -> f64 {
    if rho_edge < 1e-12 {
        return f64::INFINITY;
    }
    let certified = |eps: f64| mooij_constant(&coupling.raw_at_scale(eps)) * rho_edge < 1.0;
    let cap = coupling.max_positive_eps();
    if certified(cap * 0.999_999) {
        return cap;
    }
    let (mut lo, mut hi) = (0.0f64, cap);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if certified(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

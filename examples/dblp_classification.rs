//! Multi-class classification of a heterogeneous bibliographic network —
//! the paper's Appendix F.2 DBLP experiment, on the synthetic DBLP-like
//! network (see DESIGN.md "Substitutions").
//!
//! 4 research areas (AI / DB / DM / IR), ~10.4% of nodes labeled, 4-class
//! homophily coupling (Fig. 11a). Run with:
//! `cargo run --release --example dblp_classification`

use lsbp::prelude::*;
use lsbp_graph::generators::{dblp_like, DblpConfig, NodeKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const AREAS: [&str; 4] = ["AI", "DB", "DM", "IR"];

fn main() {
    // A mid-size instance so the example finishes in seconds; pass
    // `--full` for the paper-scale 36k-node network.
    let full = std::env::args().any(|a| a == "--full");
    let cfg = if full {
        DblpConfig::default()
    } else {
        DblpConfig {
            n_papers: 3_000,
            n_authors: 2_500,
            n_conferences: 20,
            n_terms_per_area: 400,
            n_shared_terms: 200,
            ..DblpConfig::default()
        }
    };
    let net = dblp_like(&cfg, 515);
    let n = net.graph.num_nodes();
    let adj = net.graph.adjacency();
    println!(
        "bibliographic network: {n} nodes, {} edges ({} papers / {} authors / {} conferences / terms)",
        net.graph.num_edges(),
        cfg.n_papers,
        cfg.n_authors,
        cfg.n_conferences,
    );

    // Label ~10.4% of all nodes, like the paper's DBLP subset.
    let mut rng = StdRng::seed_from_u64(1);
    let mut explicit = ExplicitBeliefs::new(n, 4);
    let target = (n as f64 * 0.104) as usize;
    let mut placed = 0;
    while placed < target {
        let v = rng.gen_range(0..n);
        if !explicit.is_explicit(v) {
            explicit.set_label(v, net.classes[v], 1.0).unwrap();
            placed += 1;
        }
    }
    println!(
        "labeled nodes: {placed} ({:.1}%)",
        100.0 * placed as f64 / n as f64
    );

    // Fig. 11a: 4-class homophily residual (diag 6, off −2), scaled inside
    // the convergence region.
    let ho = CouplingMatrix::fig11a_residual();
    let eps_exact = eps_max_exact_linbp(&ho, &adj, 1e-4);
    let eps = 0.5 * eps_exact;
    println!("εH = {eps:.2e} (exact LinBP bound {eps_exact:.2e})");

    let lin = linbp(&adj, &explicit, &ho.scale(eps), &LinBpOptions::default()).unwrap();
    assert!(lin.converged);
    let sbp_r = sbp(&adj, &explicit, &ho).unwrap();

    // Accuracy per node kind (papers are easiest: they touch conference +
    // terms + authors; shared terms are noisiest).
    for (name, beliefs) in [("LinBP", &lin.beliefs), ("SBP", &sbp_r.beliefs)] {
        println!("\n{name} accuracy by entity kind:");
        for kind in [
            NodeKind::Paper,
            NodeKind::Author,
            NodeKind::Conference,
            NodeKind::Term,
        ] {
            let mut correct = 0usize;
            let mut total = 0usize;
            for v in 0..n {
                if explicit.is_explicit(v) || net.kinds[v] != kind {
                    continue;
                }
                let tops = beliefs.top_beliefs(v, 1e-9);
                if tops.len() == 1 {
                    total += 1;
                    if tops[0] == net.classes[v] {
                        correct += 1;
                    }
                }
            }
            if total > 0 {
                println!(
                    "  {kind:?}:{}{:.1}% of {total}",
                    " ".repeat(12 - format!("{kind:?}").len()),
                    100.0 * correct as f64 / total as f64
                );
            }
        }
    }

    // F1 of SBP w.r.t. LinBP (the paper's Fig. 11b comparison).
    let gt = lin.beliefs.top_belief_assignment(1e-6);
    let ours = sbp_r.beliefs.top_belief_assignment(1e-9);
    let report = quality(&gt, &ours);
    println!(
        "\nSBP vs LinBP: precision {:.3}, recall {:.3}, F1 {:.3}",
        report.precision, report.recall, report.f1
    );

    // Show a few classified papers.
    println!("\nsample classifications:");
    let mut shown = 0;
    for v in 0..n {
        if net.kinds[v] == NodeKind::Paper && !explicit.is_explicit(v) {
            let tops = lin.beliefs.top_beliefs(v, 1e-9);
            if tops.len() == 1 {
                println!(
                    "  paper {v:>5} → {} (truth {})",
                    AREAS[tops[0]], AREAS[net.classes[v]]
                );
                shown += 1;
                if shown == 5 {
                    break;
                }
            }
        }
    }
}

//! Binary homophily — "if we know the political leanings of most of
//! Alice's friends, we have a good estimate of her leaning as well"
//! (the paper's opening example, Fig. 1a).
//!
//! Builds a two-community social network, labels a handful of users, and
//! compares all four methods on speed-of-distance-3 inference. Also
//! demonstrates the Appendix E binary reduction. Run with:
//! `cargo run --release --example political_leaning`

use lsbp::linbp::binary::fabp_coefficients;
use lsbp::prelude::*;
use lsbp_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Two Erdős–Rényi communities with sparse cross links — a planted
/// partition.
fn two_communities(per_side: usize, seed: u64) -> (Graph, Vec<usize>) {
    let n = 2 * per_side;
    let mut g = Graph::new(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let add = |g: &mut Graph,
               s: usize,
               t: usize,
               seen: &mut std::collections::HashSet<(usize, usize)>| {
        if s != t && seen.insert((s.min(t), s.max(t))) {
            g.add_edge_unweighted(s, t);
        }
    };
    // Dense inside each community (avg degree ~6), sparse across (~0.5).
    for _ in 0..(3 * per_side) {
        let s = rng.gen_range(0..per_side);
        let t = rng.gen_range(0..per_side);
        add(&mut g, s, t, &mut seen);
        let s2 = per_side + rng.gen_range(0..per_side);
        let t2 = per_side + rng.gen_range(0..per_side);
        add(&mut g, s2, t2, &mut seen);
    }
    for _ in 0..(per_side / 4) {
        let s = rng.gen_range(0..per_side);
        let t = per_side + rng.gen_range(0..per_side);
        add(&mut g, s, t, &mut seen);
    }
    let classes: Vec<usize> = (0..n).map(|v| usize::from(v >= per_side)).collect();
    (g, classes)
}

fn main() {
    let per_side = 400;
    let (graph, truth) = two_communities(per_side, 11);
    let n = graph.num_nodes();
    let adj = graph.adjacency();
    println!(
        "social network: {n} users, {} friendships, 2 planted communities",
        graph.num_edges()
    );

    // Label 10 users per side.
    let mut explicit = ExplicitBeliefs::new(n, 2);
    let mut rng = StdRng::seed_from_u64(3);
    for side in 0..2 {
        let mut placed = 0;
        while placed < 10 {
            let v = side * per_side + rng.gen_range(0..per_side);
            if !explicit.is_explicit(v) {
                explicit.set_label(v, side, 1.0).unwrap();
                placed += 1;
            }
        }
    }

    let coupling = CouplingMatrix::fig1a().unwrap(); // D/R homophily
    let eps = 0.5 * eps_max_exact_linbp(&coupling.residual(), &adj, 1e-4);
    println!("running at εH = {eps:.4}");
    let h = coupling.scaled_residual(eps);

    let evaluate = |name: &str, beliefs: &BeliefMatrix| {
        let mut correct = 0;
        let mut total = 0;
        for (v, &t) in truth.iter().enumerate() {
            if explicit.is_explicit(v) {
                continue;
            }
            let tops = beliefs.top_beliefs(v, 1e-9);
            if tops.len() == 1 {
                total += 1;
                if tops[0] == t {
                    correct += 1;
                }
            }
        }
        println!(
            "  {name:<7} accuracy {:.1}% on {} decided users",
            100.0 * correct as f64 / total as f64,
            total
        );
    };

    println!("\nclassification quality (vs planted communities):");
    let bp_r = bp(
        &adj,
        &explicit,
        &coupling.raw_at_scale(eps),
        &BpOptions::default(),
    )
    .unwrap();
    evaluate("BP", &bp_r.beliefs);
    let lin = linbp(&adj, &explicit, &h, &LinBpOptions::default()).unwrap();
    evaluate("LinBP", &lin.beliefs);
    let star = linbp_star(&adj, &explicit, &h, &LinBpOptions::default()).unwrap();
    evaluate("LinBP*", &star.beliefs);
    let sbp_r = sbp(&adj, &explicit, &coupling.residual()).unwrap();
    evaluate("SBP", &sbp_r.beliefs);

    // Appendix E: for k = 2 the whole system collapses to one scalar per
    // node. Verify on this instance by comparing the first belief column.
    let h_hat = h[(0, 0)]; // residual Ĥ = [[ĥ, −ĥ], [−ĥ, ĥ]]
    let (c1, c2) = fabp_coefficients(h_hat);
    println!("\nAppendix E binary reduction: ĥ = {h_hat:.4} → c₁ = {c1:.4}, c₂ = {c2:.4}");
    println!("(b̂ = (I − c₁A + c₂D)⁻¹ ê — one scalar per node instead of a k-vector)");

    // How split is the electorate according to LinBP?
    let lean: Vec<f64> = (0..n).map(|v| lin.beliefs.row(v)[0]).collect();
    let left = lean.iter().filter(|&&x| x > 0.0).count();
    println!(
        "\nLinBP verdict: {left} lean class 0, {} lean class 1",
        n - left
    );
}

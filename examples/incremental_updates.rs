//! Dynamic networks: incremental SBP maintenance (Sect. 6.3, Appendix C).
//!
//! Simulates a growing social network where new labels arrive (manual
//! audits) and new edges appear (new friendships), maintains the SBP
//! labeling incrementally, and compares against recomputation from
//! scratch — both for correctness and for work saved. Run with:
//! `cargo run --release --example incremental_updates`

use lsbp::prelude::*;
use lsbp_graph::generators::erdos_renyi_gnm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let n = 30_000;
    let full = erdos_renyi_gnm(n, 120_000, 99);
    let (mut graph, future_edges) = full.split_edges(110_000);
    let future: Vec<_> = future_edges.edges().collect();
    let ho = CouplingMatrix::fig1c().unwrap().residual();

    // Initial labels: 2% of users.
    let mut rng = StdRng::seed_from_u64(5);
    let mut labels = ExplicitBeliefs::new(n, 3);
    let mut placed = 0;
    while placed < n / 50 {
        let v = rng.gen_range(0..n);
        if !labels.is_explicit(v) {
            labels.set_label(v, rng.gen_range(0..3), 1.0).unwrap();
            placed += 1;
        }
    }

    let t0 = Instant::now();
    let mut state = sbp(&graph.adjacency(), &labels, &ho).unwrap();
    println!(
        "initial SBP over {n} nodes / {} edges: {:?} ({} BFS layers)",
        graph.num_edges(),
        t0.elapsed(),
        state.geodesics.num_layers()
    );

    // --- Scenario 1: a batch of 30 new audit labels arrives. -----------
    let mut delta = ExplicitBeliefs::new(n, 3);
    let mut all = labels.clone();
    let mut added = 0;
    while added < 30 {
        let v = rng.gen_range(0..n);
        if !all.is_explicit(v) {
            let c = rng.gen_range(0..3);
            delta.set_label(v, c, 1.0).unwrap();
            all.set_label(v, c, 1.0).unwrap();
            added += 1;
        }
    }
    let adj = graph.adjacency();
    let t1 = Instant::now();
    state = sbp_add_explicit(&adj, &ho, &state, &delta).unwrap();
    let incremental_time = t1.elapsed();
    let t2 = Instant::now();
    let scratch = sbp(&adj, &all, &ho).unwrap();
    let scratch_time = t2.elapsed();
    assert_eq!(state.geodesics.g, scratch.geodesics.g);
    assert!(
        state
            .beliefs
            .residual()
            .max_abs_diff(scratch.beliefs.residual())
            < 1e-9
    );
    println!(
        "\n+30 labels:  ΔSBP {incremental_time:?}  vs  recompute {scratch_time:?}  ({:.1}× speed-up, results identical)",
        scratch_time.as_secs_f64() / incremental_time.as_secs_f64()
    );

    // --- Scenario 2: 500 new friendships form. --------------------------
    let batch: Vec<_> = future.iter().take(500).copied().collect();
    for &(s, t, w) in &batch {
        graph.add_edge(s, t, w);
    }
    let adj_new = graph.adjacency();
    let t3 = Instant::now();
    state = sbp_add_edges(&adj_new, &batch, &ho, &state).unwrap();
    let incremental_time = t3.elapsed();
    let t4 = Instant::now();
    let scratch = sbp(&adj_new, &all, &ho).unwrap();
    let scratch_time = t4.elapsed();
    assert_eq!(state.geodesics.g, scratch.geodesics.g);
    assert!(
        state
            .beliefs
            .residual()
            .max_abs_diff(scratch.beliefs.residual())
            < 1e-9
    );
    println!(
        "+500 edges:  ΔSBP {incremental_time:?}  vs  recompute {scratch_time:?}  ({:.1}× speed-up, results identical)",
        scratch_time.as_secs_f64() / incremental_time.as_secs_f64()
    );

    // --- Scenario 3: a stream of single-label updates. -------------------
    println!("\nstreaming 20 single-label updates:");
    let mut total_inc = std::time::Duration::ZERO;
    for _ in 0..20 {
        let v = rng.gen_range(0..n);
        let c = rng.gen_range(0..3);
        let mut d = ExplicitBeliefs::new(n, 3);
        d.set_label(v, c, 1.0).unwrap();
        all.set_label(v, c, 1.0).unwrap();
        let t = Instant::now();
        state = sbp_add_explicit(&adj_new, &ho, &state, &d).unwrap();
        total_inc += t.elapsed();
    }
    let t5 = Instant::now();
    let scratch = sbp(&adj_new, &all, &ho).unwrap();
    let one_scratch = t5.elapsed();
    assert!(
        state
            .beliefs
            .residual()
            .max_abs_diff(scratch.beliefs.residual())
            < 1e-9
    );
    println!(
        "  20 incremental updates took {total_inc:?} total — {:.1}% of ONE recomputation ({one_scratch:?})",
        100.0 * total_inc.as_secs_f64() / one_scratch.as_secs_f64()
    );
}

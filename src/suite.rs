#![warn(missing_docs)]

//! Root package of the LSBP workspace.
//!
//! This crate exists to host the paper-level integration suites in
//! `tests/` (one per claim cluster: the torus worked example, method
//! agreement, convergence criteria, the εH → 0⁺ SBP limit, incremental
//! maintenance, weighted graphs, the relational engine equivalence, and
//! end-to-end property tests) and the runnable walkthroughs in
//! `examples/`. It re-exports the member crates so suite code can reach
//! everything through one dependency if it wants to.

pub use lsbp;
pub use lsbp_bench;
pub use lsbp_graph;
pub use lsbp_linalg;
pub use lsbp_reldb;
pub use lsbp_sparse;
